package policy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/dist"
	"repro/internal/sim"
)

// DPNextFailurePlanner holds the immutable configuration of the paper's
// main heuristic contribution (Algorithm 2, §2.4/§3.3): the dynamic
// program that maximizes the expected amount of work completed before the
// next failure, re-planned after every failure.
//
// The planner is shared read-only by every concurrent run of a scenario;
// the per-trace mutable execution state (the chunk-plan cursor, the
// failure counter, and the re-planning scratch slabs) lives in the
// DPNextFailure instances it hands out via NewPolicy. Because the very
// first planning pass of a run depends only on the job geometry when no
// unit has failed yet, the planner memoizes that pristine-state plan: in
// scenarios where the job is released before the first failure (the
// paper's single-processor tables), the expensive initial DP is solved
// once per scenario instead of once per trace.
//
// Implementation notes mirroring §3.3:
//
//   - Because chunks are only re-planned at failures, the per-state
//     processor ages are fully determined by the elapsed execution time, so
//     the joint success probability collapses to a single scalar function
//     G(t) = sum_g w_g H(tau_g + t) over processor groups (H = cumulative
//     hazard), precomputed on a grid: each DP transition costs O(1).
//   - The processor-age state is approximated: the NExact smallest ages are
//     kept exact; the rest are binned onto NApprox reference values placed
//     at survival-interpolated quantiles of the failure law.
//   - The planning horizon is truncated to min(remaining, 2*MTBF/p) and
//     only the first half of the planned chunks is executed before
//     re-planning, exactly as the paper prescribes to keep the algorithm
//     fast enough for production use.
//
// Incremental re-planning (this file's warm path) keeps every decision
// bit-identical to the frozen from-scratch solver in
// dpnextfailure_reference.go while removing its per-call cost:
//
//   - All DP state (value/argmin tables, the G(t) grid, the age-group
//     buffers, the extracted plan) lives in per-instance preallocated
//     slabs, so steady-state re-planning allocates nothing.
//   - The horizon cap min(2*MTBF/p, 30 Young periods) is hoisted into
//     Start — it depends only on the job, not the state.
//   - The survival grid is rebuilt only when its inputs (age groups,
//     horizon, resolution) actually changed, and can be shared across
//     sessions on the same (law, platform) through an engine cache via
//     WithSharedGrids.
//   - Candidate chunks whose provable upper bound e^d <= 1+d+d^2/2
//     (valid for d <= 0) cannot beat the incumbent skip the math.Exp
//     call; a 1e-9 relative slack absorbs float rounding so the argmax —
//     and therefore the plan — is exactly the reference's.
//   - WithCoarseQuanta opts post-failure re-plans into a coarser DP
//     (fewer quanta, a 256-point grid). That mode is approximate by
//     construction; its value loss is bounded (see doc.go) and it is
//     never used for the pristine plan or when exactness is required.
type DPNextFailurePlanner struct {
	d        dist.Distribution
	unitMean float64 // per-unit MTBF used for the horizon truncation
	quanta   int
	coarse   int // 0 = always exact; else post-failure replan resolution
	nExact   int
	nApprox  int
	halfPlan bool

	// grids, when non-nil, shares built survival grids across sessions
	// keyed by (lawKey, age groups, horizon, resolution). Consulted only
	// for small group counts: key construction allocates, and large group
	// sets are session-specific anyway.
	grids  SharedCache
	lawKey string

	// pristine memoizes the plan for failure-free initial states, keyed by
	// the state signature. Computed under mu so concurrent first-deciders
	// of the same scenario share one DP solve.
	mu       sync.Mutex
	pristine map[pristineKey][]float64
}

// SharedCache is the minimal surface of a build-once artifact cache used
// to share survival grids across planner instances; engine.Cache
// implements it. build returns the artifact and its weight in bytes.
type SharedCache interface {
	Do(key string, build func() (artifact any, weight int64, err error)) (any, error)
}

// pristineKey identifies a failure-free decision state completely: with no
// failed units every group age equals Now, so (remaining, now, C, units)
// determines the DP instance.
type pristineKey struct {
	remaining float64
	now       float64
	c         float64
	units     int
}

// DPNextFailure walks a shared DPNextFailurePlanner during one simulated
// run. It carries the per-trace mutable state: the plan cursor, the
// failure counter, the job-derived horizon cap (hoisted out of replan by
// Start), and the lazily-allocated re-planning scratch slabs.
type DPNextFailure struct {
	planner    *DPNextFailurePlanner
	horizonCap float64 // min(2*MTBF/p, 30 Young periods); set by Start
	plan       []float64
	cursor     int
	failures   int
	rp         *replanScratch
}

// DPNextFailureOption customizes the policy.
type DPNextFailureOption func(*DPNextFailure)

// WithQuanta sets the DP resolution (number of work quanta in the planning
// horizon; the paper's time quantum u is horizon/quanta).
func WithQuanta(n int) DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.quanta = n }
}

// WithStateApprox sets the §3.3 state-approximation parameters (the paper
// uses nExact=10, nApprox=100).
func WithStateApprox(nExact, nApprox int) DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.nExact, p.planner.nApprox = nExact, nApprox }
}

// WithFullPlan disables the execute-only-half-the-plan optimization
// (useful for tests on tiny instances).
func WithFullPlan() DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.halfPlan = false }
}

// WithCoarseQuanta opts post-failure re-plans into an approximate coarse
// mode: they solve the truncated DP over n quanta (n < WithQuanta's
// resolution) on a 256-point survival grid instead of the exact
// configuration. The pristine (failure-free) plan is always solved at
// full resolution. Coarse decisions are NOT bit-identical to the exact
// solver; the expected-work loss of a coarse plan is bounded by roughly
// one coarse quantum per planned chunk (asserted by the differential
// suite). Use for latency-sensitive serving where re-plan throughput
// matters more than the last fraction of expected work.
func WithCoarseQuanta(n int) DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.coarse = n }
}

// WithSharedGrids wires the planner to a cross-session artifact cache for
// survival grids. lawKey must uniquely identify the failure law (the
// engine uses its canonical distribution key); grids are further keyed by
// the exact bit patterns of the age groups and horizon, so a cache hit is
// bitwise-equivalent to building the grid locally.
func WithSharedGrids(c SharedCache, lawKey string) DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.grids, p.planner.lawKey = c, lawKey }
}

// NewDPNextFailurePlanner returns the immutable shared planner. d is the
// per-unit failure law and unitMean its MTBF (used only to truncate the
// planning horizon). Options must be applied here: the planner must not be
// mutated once NewPolicy instances exist.
func NewDPNextFailurePlanner(d dist.Distribution, unitMean float64, opts ...DPNextFailureOption) *DPNextFailurePlanner {
	return NewDPNextFailure(d, unitMean, opts...).planner
}

// NewPolicy returns a fresh per-run policy instance over the shared
// planner.
func (pl *DPNextFailurePlanner) NewPolicy() *DPNextFailure {
	return &DPNextFailure{planner: pl}
}

// NewDPNextFailure returns a fresh per-run policy instance backed by its
// own planner. To share the planning memo across runs, build one
// DPNextFailurePlanner and use NewPolicy instead.
func NewDPNextFailure(d dist.Distribution, unitMean float64, opts ...DPNextFailureOption) *DPNextFailure {
	p := &DPNextFailure{planner: &DPNextFailurePlanner{
		d:        d,
		unitMean: unitMean,
		quanta:   150,
		nExact:   10,
		nApprox:  100,
		halfPlan: true,
	}}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Policy.
func (p *DPNextFailure) Name() string { return "DPNextFailure" }

// Start implements sim.Policy. Besides validating the configuration it
// derives the horizon cap, which depends only on the job: replan used to
// recompute it on every call.
func (p *DPNextFailure) Start(job *sim.Job) error {
	pl := p.planner
	if pl.quanta < 2 {
		return fmt.Errorf("policy: DPNextFailure needs at least 2 quanta, got %d", pl.quanta)
	}
	if pl.coarse != 0 && (pl.coarse < 2 || pl.coarse > pl.quanta) {
		return fmt.Errorf("policy: DPNextFailure coarse quanta must be in [2, quanta=%d], got %d", pl.quanta, pl.coarse)
	}
	if !(pl.unitMean > 0) {
		return fmt.Errorf("policy: DPNextFailure: non-positive unit MTBF %v", pl.unitMean)
	}
	// Horizon truncation: min(remaining, 2 * platform MTBF) (§3.3). On
	// mid-size platforms 2*MTBF/p can span only a handful of optimal
	// chunks, which would make the quantum coarser than the decisions it
	// must resolve; we additionally cap the horizon at ~30 Young periods
	// so the quantum stays a small fraction of a chunk. At the paper's
	// Petascale/Exascale scales the 2*MTBF/p term is the smaller one and
	// the behavior is exactly the paper's. The state-dependent min with
	// Remaining happens in replan; everything else is job-only and lives
	// here.
	platformMTBF := pl.unitMean / float64(job.Units)
	hc := 2 * platformMTBF
	if young := 30 * math.Sqrt(2*job.C*platformMTBF); young > 0 && young < hc {
		hc = young
	}
	p.horizonCap = hc
	p.plan = nil
	p.cursor = 0
	p.failures = 0
	return nil
}

// OnFailure invalidates the current plan.
func (p *DPNextFailure) OnFailure(s *sim.State) {
	p.plan = nil
	p.cursor = 0
	p.failures = s.Failures
}

// NextChunk implements sim.Policy.
func (p *DPNextFailure) NextChunk(s *sim.State) float64 {
	if s.Failures != p.failures {
		p.plan = nil
		p.cursor = 0
		p.failures = s.Failures
	}
	if p.cursor >= len(p.plan) {
		if s.Failures == 0 && len(s.FailedUnits) == 0 && s.Remaining == s.Job.Work {
			// Failure-free initial state: identical for every trace of the
			// scenario, so the plan is memoized on the shared planner.
			p.plan = p.planner.pristinePlan(p, s)
		} else {
			p.plan = p.replan(s)
		}
		p.cursor = 0
	}
	if len(p.plan) == 0 {
		// Degenerate state (e.g. empirical law past its support): creep
		// forward one quantum at a time.
		return math.Min(s.Remaining, math.Max(s.Remaining/float64(p.planner.quanta), 1e-9))
	}
	chunk := p.plan[p.cursor]
	p.cursor++
	return math.Min(chunk, s.Remaining)
}

// pristinePlan returns the memoized plan for a failure-free state. The
// returned slice is shared read-only across instances: NextChunk only
// walks it with a cursor. The stored plan is copied out of the solving
// instance's scratch slab, which later re-plans overwrite.
func (pl *DPNextFailurePlanner) pristinePlan(p *DPNextFailure, s *sim.State) []float64 {
	key := pristineKey{remaining: s.Remaining, now: s.Now, c: s.Job.C, units: s.Job.Units}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if plan, ok := pl.pristine[key]; ok {
		return plan
	}
	plan := append([]float64(nil), p.replan(s)...)
	if pl.pristine == nil {
		pl.pristine = map[pristineKey][]float64{}
	}
	pl.pristine[key] = plan
	return plan
}

// taugroup is a group of units sharing (exactly or approximately) the same
// age since renewal.
type taugroup struct {
	tau    float64
	weight float64
}

// Grid resolutions: the exact mode matches the reference solver's 1024
// points; coarse mode trades resolution for fill cost.
const (
	gridPoints       = 1024
	coarseGridPoints = 256

	// sharedGridMaxGroups bounds when the cross-session grid cache is
	// consulted: key construction allocates, and states with many distinct
	// ages are effectively unique to their session anyway. Small counts
	// (the pristine single group, the first few failures) are exactly the
	// ones many sessions share.
	sharedGridMaxGroups = 4

	// dpBoundSlack absorbs float rounding between the pruning upper bound
	// and the exact candidate value so a pruned candidate provably cannot
	// have been the argmax. See solveNextFailureDPInto.
	dpBoundSlack = 1 + 1e-9
)

// replanScratch holds one instance's preallocated re-planning state. All
// slabs grow to their high-water mark once and are reused; the warm path
// performs no allocation.
type replanScratch struct {
	// Age-group construction buffers (buildGroupsInto).
	taus    []float64
	groups  []taugroup
	refs    []float64
	weights []float64

	// The survival grid last used, with the signature it was built from.
	// grid may point at ownGrid (backed by gbuf) or at a cache-shared,
	// immutable grid; the signature makes reuse decisions identical either
	// way.
	grid       *survivalGrid
	ownGrid    survivalGrid
	gbuf       []float64
	gridGroups []taugroup
	gridTmax   float64
	gridN      int

	// DP slabs. val's first row (rem = 0) is all zeros and is never
	// written by a solve; solvedX tracks the stride the slab was last used
	// with so a resolution switch re-zeros exactly that row.
	val     []float64
	choice  []int32
	iu      []float64 // iu[i] = float64(i) * u for the current solve
	solvedX int

	// The last extracted (untruncated) plan and the full input signature
	// it was solved from; a bitwise match re-serves it without solving.
	plan      []float64
	prevU     float64
	prevC     float64
	prevX     int
	prevTrunc bool
	planOK    bool
}

func (p *DPNextFailure) scratch() *replanScratch {
	if p.rp == nil {
		p.rp = &replanScratch{}
	}
	return p.rp
}

// replan solves the truncated NextFailure DP for the current state and
// returns the chunk plan (a view into the instance scratch, valid until
// the next replan). In exact mode the result is bit-identical to
// replanReference; with WithCoarseQuanta and at least one observed
// failure it solves the cheaper coarse configuration instead.
func (p *DPNextFailure) replan(s *sim.State) []float64 {
	pl := p.planner
	target := math.Min(s.Remaining, p.horizonCap)
	if target <= 0 {
		return nil
	}
	truncated := target < s.Remaining*(1-1e-12)
	x, gridN := pl.quanta, gridPoints
	if pl.coarse > 0 && s.Failures > 0 {
		x, gridN = pl.coarse, coarseGridPoints
	}
	u := target / float64(x)
	c := s.Job.C
	tmax := float64(x)*(u+c) + u + c

	sc := p.scratch()
	groups := pl.buildGroupsInto(s, sc)

	gridFresh := sc.grid != nil && sc.gridN == gridN && sc.gridTmax == tmax && sameGroups(groups, sc.gridGroups)
	if sc.planOK && gridFresh && sc.prevX == x && sc.prevU == u && sc.prevC == c && sc.prevTrunc == truncated {
		// Bitwise-identical inputs: the previous solve's plan is this
		// state's plan.
		return pl.finishPlan(sc, truncated)
	}
	if !gridFresh {
		sc.acquireGrid(pl, groups, tmax, gridN)
	}

	pl.solveInto(sc, x, u, c)
	sc.prevU, sc.prevC, sc.prevX, sc.prevTrunc, sc.planOK = u, c, x, truncated, true
	return pl.finishPlan(sc, truncated)
}

// finishPlan applies the §3.3 execute-half-the-plan rule to the scratch
// plan.
func (pl *DPNextFailurePlanner) finishPlan(sc *replanScratch, truncated bool) []float64 {
	plan := sc.plan
	if truncated && pl.halfPlan && len(plan) > 1 {
		plan = plan[:(len(plan)+1)/2]
	}
	return plan
}

// sameGroups reports whether two group sets are bitwise identical.
func sameGroups(a, b []taugroup) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// acquireGrid points sc.grid at a survival grid for (groups, tmax, gridN):
// a cache-shared one when the planner has a grid cache and the group set
// is small, otherwise one (re)built into the instance-owned slab. Both
// paths produce bitwise-identical grids.
func (sc *replanScratch) acquireGrid(pl *DPNextFailurePlanner, groups []taugroup, tmax float64, gridN int) {
	var grid *survivalGrid
	if pl.grids != nil && len(groups) <= sharedGridMaxGroups {
		grid = pl.sharedGrid(groups, tmax, gridN)
	}
	if grid == nil {
		need := gridN + 2
		if cap(sc.gbuf) < need {
			sc.gbuf = make([]float64, need)
		}
		sc.ownGrid.g = sc.gbuf[:need]
		fillSurvivalGrid(&sc.ownGrid, pl.d, groups, tmax, gridN)
		grid = &sc.ownGrid
	}
	sc.grid = grid
	sc.gridGroups = append(sc.gridGroups[:0], groups...)
	sc.gridTmax = tmax
	sc.gridN = gridN
	sc.planOK = false
}

// sharedGrid fetches (building once across all sessions) the grid from
// the planner's shared cache. Returns nil on any cache error so the
// caller falls back to a local build.
func (pl *DPNextFailurePlanner) sharedGrid(groups []taugroup, tmax float64, gridN int) *survivalGrid {
	key := gridCacheKey(pl.lawKey, groups, tmax, gridN)
	v, err := pl.grids.Do(key, func() (any, int64, error) {
		sg := &survivalGrid{g: make([]float64, gridN+2)}
		fillSurvivalGrid(sg, pl.d, groups, tmax, gridN)
		return sg, int64((gridN + 2) * 8), nil
	})
	if err != nil {
		return nil
	}
	sg, ok := v.(*survivalGrid)
	if !ok {
		return nil
	}
	return sg
}

// gridCacheKey encodes every bit the grid depends on: the law, the exact
// age-group values and weights, the horizon, and the resolution. Equal
// keys therefore imply bitwise-equal grids.
func gridCacheKey(lawKey string, groups []taugroup, tmax float64, gridN int) string {
	b := make([]byte, 0, 48+len(lawKey)+35*len(groups))
	b = append(b, "dpnfgrid|"...)
	b = append(b, lawKey...)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(tmax), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(gridN), 10)
	for _, gr := range groups {
		b = append(b, '|')
		b = strconv.AppendUint(b, math.Float64bits(gr.tau), 16)
		b = append(b, ':')
		b = strconv.AppendUint(b, math.Float64bits(gr.weight), 16)
	}
	return string(b)
}

// solveInto runs the DP solve against the current scratch grid, managing
// the value/argmin slabs, and leaves the extracted plan in sc.plan.
func (pl *DPNextFailurePlanner) solveInto(sc *replanScratch, x int, u, c float64) {
	stride := x + 1
	need := stride * stride
	if cap(sc.val) < need || cap(sc.choice) < need {
		sc.val = make([]float64, need) // zeroed: row 0 must stay zero
		sc.choice = make([]int32, need)
		sc.solvedX = x
	} else {
		sc.val = sc.val[:need]
		sc.choice = sc.choice[:need]
		if sc.solvedX != x {
			// The slab was last indexed with a different stride, so this
			// solve's row 0 may overlap cells the previous one wrote.
			for i := 0; i < stride; i++ {
				sc.val[i] = 0
			}
			sc.solvedX = x
		}
	}
	if cap(sc.iu) < stride {
		sc.iu = make([]float64, stride)
	} else {
		sc.iu = sc.iu[:stride]
	}
	for i := range sc.iu {
		sc.iu[i] = float64(i) * u
	}

	solveNextFailureDPInto(x, c, sc.grid, sc.val, sc.choice, sc.iu)

	// Extract the plan from the initial state.
	plan := sc.plan[:0]
	rem, n := x, 0
	for rem > 0 {
		i := int(sc.choice[rem*stride+n])
		if i <= 0 {
			break
		}
		plan = append(plan, sc.iu[i])
		rem -= i
		n++
	}
	sc.plan = plan
}

// buildGroupsInto constructs the §3.3 approximate age state: the NExact
// smallest ages exactly, the rest binned onto NApprox survival-quantile
// reference values. Units that never failed share a single group (their
// age is simply Now), which keeps the construction O(#failed log #failed)
// even on million-unit platforms. All buffers come from sc; the returned
// slice aliases sc.groups.
func (pl *DPNextFailurePlanner) buildGroupsInto(s *sim.State, sc *replanScratch) []taugroup {
	taus := sc.taus[:0]
	for _, u := range s.FailedUnits {
		taus = append(taus, s.Tau(int(u)))
	}
	sort.Float64s(taus)
	sc.taus = taus
	neverCount := s.Job.Units - len(taus)
	neverTau := s.Now // renewal at trace time 0

	groups := sc.groups[:0]
	nExact := pl.nExact
	if nExact > len(taus) {
		nExact = len(taus)
	}
	for _, t := range taus[:nExact] {
		groups = append(groups, taugroup{tau: t, weight: 1})
	}
	rest := taus[nExact:]
	if len(rest)+boolToInt(neverCount > 0) <= pl.nApprox {
		// Few enough distinct ages: keep them all exactly.
		for _, t := range rest {
			groups = append(groups, taugroup{tau: t, weight: 1})
		}
		if neverCount > 0 {
			groups = append(groups, taugroup{tau: neverTau, weight: float64(neverCount)})
		}
		sc.groups = groups
		return groups
	}

	// Reference values: tau1 = smallest remaining age, tauM = largest;
	// intermediate values interpolate linearly in survival-probability
	// space (§3.3).
	tauLo := rest[0]
	tauHi := rest[len(rest)-1]
	if neverCount > 0 && neverTau > tauHi {
		tauHi = neverTau
	}
	m := pl.nApprox
	refs := sc.refs
	if cap(refs) < m {
		refs = make([]float64, m)
	} else {
		refs = refs[:m]
	}
	sc.refs = refs
	refs[0] = tauLo
	refs[m-1] = tauHi
	sLo := pl.d.Survival(tauLo)
	sHi := pl.d.Survival(tauHi)
	for i := 2; i < m; i++ {
		q := float64(m-i)/float64(m-1)*sLo + float64(i-1)/float64(m-1)*sHi
		refs[i-1] = dist.InverseSurvival(pl.d, q)
	}
	sort.Float64s(refs)
	weights := sc.weights
	if cap(weights) < m {
		weights = make([]float64, m)
	} else {
		weights = weights[:m]
		for i := range weights {
			weights[i] = 0
		}
	}
	sc.weights = weights
	for _, t := range rest {
		assignNearest(refs, weights, t, 1)
	}
	if neverCount > 0 {
		assignNearest(refs, weights, neverTau, float64(neverCount))
	}
	for i, w := range weights {
		if w > 0 {
			groups = append(groups, taugroup{tau: refs[i], weight: w})
		}
	}
	sc.groups = groups
	return groups
}

// assignNearest adds weight w to the reference value nearest t by age.
func assignNearest(refs, weights []float64, t, w float64) {
	m := len(refs)
	i := sort.SearchFloat64s(refs, t)
	switch {
	case i == 0:
		weights[0] += w
	case i >= m:
		weights[m-1] += w
	case t-refs[i-1] <= refs[i]-t:
		weights[i-1] += w
	default:
		weights[i] += w
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// survivalGrid tabulates G(t) = sum_g w_g H(tau_g + t) on a uniform grid
// so the DP can evaluate joint success probabilities in O(1):
// Psuc over elapsed [a, b] = exp(G(a) - G(b)).
type survivalGrid struct {
	step float64
	g    []float64
}

// newSurvivalGrid builds a freshly allocated exact-resolution grid. The
// warm path uses fillSurvivalGrid into a scratch slab instead.
func newSurvivalGrid(d dist.Distribution, groups []taugroup, tmax float64) *survivalGrid {
	sg := &survivalGrid{g: make([]float64, gridPoints+2)}
	fillSurvivalGrid(sg, d, groups, tmax, gridPoints)
	return sg
}

// fillSurvivalGrid populates sg (whose g must already have length n+2)
// with the cumulative-hazard mixture of groups over [0, tmax]. The
// per-family arms are operation-for-operation identical to the generic
// loop — they exist only to devirtualize the CumHazard call on the two
// closed-form laws that dominate planning workloads, which the reference
// solver pays interface dispatch for. Resolution note (exact mode): 1024
// points over the horizon is fine enough that linear interpolation of the
// cumulative hazard is accurate for the smooth laws used here.
func fillSurvivalGrid(sg *survivalGrid, d dist.Distribution, groups []taugroup, tmax float64, n int) {
	sg.step = tmax / float64(n)
	g := sg.g
	switch law := d.(type) {
	case dist.Exponential:
		for j := range g {
			t := float64(j) * sg.step
			var acc float64
			for _, gr := range groups {
				acc += gr.weight * law.CumHazard(gr.tau+t)
			}
			g[j] = acc
		}
	case dist.Weibull:
		for j := range g {
			t := float64(j) * sg.step
			var acc float64
			for _, gr := range groups {
				acc += gr.weight * law.CumHazard(gr.tau+t)
			}
			g[j] = acc
		}
	default:
		for j := range g {
			t := float64(j) * sg.step
			var acc float64
			for _, gr := range groups {
				acc += gr.weight * d.CumHazard(gr.tau+t)
			}
			g[j] = acc
		}
	}
}

// at linearly interpolates G(t).
func (sg *survivalGrid) at(t float64) float64 {
	if t <= 0 {
		return sg.g[0]
	}
	f := t / sg.step
	i := int(f)
	if i >= len(sg.g)-1 {
		return sg.g[len(sg.g)-1]
	}
	frac := f - float64(i)
	return sg.g[i]*(1-frac) + sg.g[i+1]*frac
}

// psuc returns the probability that no unit fails while elapsed time runs
// from a to b.
func (sg *survivalGrid) psuc(a, b float64) float64 {
	return math.Exp(sg.at(a) - sg.at(b))
}

// solveNextFailureDPInto runs Algorithm 2 on x quanta of size u with
// checkpoint cost c, writing into the provided slabs. State (x', n): x'
// quanta remaining, n chunks committed; the elapsed execution time is
// (x-x')*u + n*c, which makes the whole transition structure expressible
// through the survival grid. G(a) is hoisted out of the candidate loop —
// every transition from a state shares the same start age.
//
// Two candidate filters skip the math.Exp call without ever changing the
// argmax (so plans stay bit-identical to solveNextFailureDPReference):
//
//   - d <= -745: math.Exp(d) underflows to exactly 0, so v = 0 can never
//     exceed best (best >= 0 and ties keep the incumbent).
//   - Otherwise, e^d <= 1 + d + d^2/2 for every d <= 0 (the difference
//     has nonpositive derivative and vanishes at 0), so when that bound
//     times w — inflated by dpBoundSlack to absorb the rounding of the
//     bound, of math.Exp, and of the products — is still strictly below
//     the incumbent, the exact v := Exp(d)*w could not have won. The only
//     positive d values that can occur are rounding-level (G is
//     nondecreasing), where the slack again covers the gap.
func solveNextFailureDPInto(x int, c float64, grid *survivalGrid, val []float64, choice []int32, iu []float64) {
	stride := x + 1
	for rem := 1; rem <= x; rem++ {
		maxN := x - rem
		row := rem * stride
		for n := 0; n <= maxN; n++ {
			a := iu[x-rem] + float64(n)*c
			ga := grid.at(a)
			best := 0.0
			bestI := int32(0)
			succ := (rem-1)*stride + n + 1 // idx(rem-i, n+1) at i = 1
			for i := 1; i <= rem; i++ {
				w := iu[i] + val[succ]
				succ -= stride
				d := ga - grid.at(a+iu[i]+c)
				if d <= -745 {
					continue
				}
				if q := 1 + d + 0.5*d*d; q*w*dpBoundSlack < best {
					continue
				}
				if v := math.Exp(d) * w; v > best {
					best = v
					bestI = int32(i)
				}
			}
			val[row+n] = best
			choice[row+n] = bestI
		}
	}
}

// solveNextFailureDP solves with freshly allocated tables and returns the
// optimal chunk plan along with its objective value, the expected work
// before the next failure. Kept for callers outside the warm path.
func solveNextFailureDP(x int, u, c float64, grid *survivalGrid) ([]float64, float64) {
	stride := x + 1
	val := make([]float64, stride*stride)
	choice := make([]int32, stride*stride)
	iu := make([]float64, stride)
	for i := range iu {
		iu[i] = float64(i) * u
	}
	solveNextFailureDPInto(x, c, grid, val, choice, iu)

	var plan []float64
	rem, n := x, 0
	for rem > 0 {
		i := int(choice[rem*stride+n])
		if i <= 0 {
			break
		}
		plan = append(plan, iu[i])
		rem -= i
		n++
	}
	return plan, val[x*stride]
}

// buildGroups constructs the §3.3 age-group state with fresh buffers.
// Production re-planning goes through buildGroupsInto; this remains for
// direct callers and tests.
func (pl *DPNextFailurePlanner) buildGroups(s *sim.State) []taugroup {
	return pl.buildGroupsInto(s, &replanScratch{})
}

// PlanAndValue solves the DP for the given state and returns the full
// (untruncated-by-half) plan and its objective value, the expected work
// completed before the next failure. Used by tests to compare against the
// brute-force oracle of Proposition 3. Unlike replan it never applies the
// Young-period horizon cap or the coarse mode, matching its historical
// contract; the returned plan is freshly allocated.
func (p *DPNextFailure) PlanAndValue(s *sim.State) ([]float64, float64) {
	pl := p.planner
	platformMTBF := pl.unitMean / float64(s.Job.Units)
	target := math.Min(s.Remaining, 2*platformMTBF)
	x := pl.quanta
	u := target / float64(x)
	groups := pl.buildGroups(s)
	grid := newSurvivalGrid(pl.d, groups, float64(x)*(u+s.Job.C)+u+s.Job.C)
	return solveNextFailureDP(x, u, s.Job.C, grid)
}
