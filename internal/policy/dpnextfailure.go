package policy

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/sim"
)

// DPNextFailurePlanner holds the immutable configuration of the paper's
// main heuristic contribution (Algorithm 2, §2.4/§3.3): the dynamic
// program that maximizes the expected amount of work completed before the
// next failure, re-planned after every failure.
//
// The planner is shared read-only by every concurrent run of a scenario;
// the per-trace mutable execution state (the chunk-plan cursor and the
// failure counter) lives in the DPNextFailure instances it hands out via
// NewPolicy. Because the very first planning pass of a run depends only on
// the job geometry when no unit has failed yet, the planner memoizes that
// pristine-state plan: in scenarios where the job is released before the
// first failure (the paper's single-processor tables), the expensive
// initial DP is solved once per scenario instead of once per trace.
//
// Implementation notes mirroring §3.3:
//
//   - Because chunks are only re-planned at failures, the per-state
//     processor ages are fully determined by the elapsed execution time, so
//     the joint success probability collapses to a single scalar function
//     G(t) = sum_g w_g H(tau_g + t) over processor groups (H = cumulative
//     hazard), precomputed on a grid: each DP transition costs O(1).
//   - The processor-age state is approximated: the NExact smallest ages are
//     kept exact; the rest are binned onto NApprox reference values placed
//     at survival-interpolated quantiles of the failure law.
//   - The planning horizon is truncated to min(remaining, 2*MTBF/p) and
//     only the first half of the planned chunks is executed before
//     re-planning, exactly as the paper prescribes to keep the algorithm
//     fast enough for production use.
type DPNextFailurePlanner struct {
	d        dist.Distribution
	unitMean float64 // per-unit MTBF used for the horizon truncation
	quanta   int
	nExact   int
	nApprox  int
	halfPlan bool

	// pristine memoizes the plan for failure-free initial states, keyed by
	// the state signature. Computed under mu so concurrent first-deciders
	// of the same scenario share one DP solve.
	mu       sync.Mutex
	pristine map[pristineKey][]float64
}

// pristineKey identifies a failure-free decision state completely: with no
// failed units every group age equals Now, so (remaining, now, C, units)
// determines the DP instance.
type pristineKey struct {
	remaining float64
	now       float64
	c         float64
	units     int
}

// DPNextFailure walks a shared DPNextFailurePlanner during one simulated
// run. It carries only per-trace mutable state and is cheap to construct.
type DPNextFailure struct {
	planner  *DPNextFailurePlanner
	plan     []float64
	failures int
}

// DPNextFailureOption customizes the policy.
type DPNextFailureOption func(*DPNextFailure)

// WithQuanta sets the DP resolution (number of work quanta in the planning
// horizon; the paper's time quantum u is horizon/quanta).
func WithQuanta(n int) DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.quanta = n }
}

// WithStateApprox sets the §3.3 state-approximation parameters (the paper
// uses nExact=10, nApprox=100).
func WithStateApprox(nExact, nApprox int) DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.nExact, p.planner.nApprox = nExact, nApprox }
}

// WithFullPlan disables the execute-only-half-the-plan optimization
// (useful for tests on tiny instances).
func WithFullPlan() DPNextFailureOption {
	return func(p *DPNextFailure) { p.planner.halfPlan = false }
}

// NewDPNextFailurePlanner returns the immutable shared planner. d is the
// per-unit failure law and unitMean its MTBF (used only to truncate the
// planning horizon). Options must be applied here: the planner must not be
// mutated once NewPolicy instances exist.
func NewDPNextFailurePlanner(d dist.Distribution, unitMean float64, opts ...DPNextFailureOption) *DPNextFailurePlanner {
	return NewDPNextFailure(d, unitMean, opts...).planner
}

// NewPolicy returns a fresh per-run policy instance over the shared
// planner.
func (pl *DPNextFailurePlanner) NewPolicy() *DPNextFailure {
	return &DPNextFailure{planner: pl}
}

// NewDPNextFailure returns a fresh per-run policy instance backed by its
// own planner. To share the planning memo across runs, build one
// DPNextFailurePlanner and use NewPolicy instead.
func NewDPNextFailure(d dist.Distribution, unitMean float64, opts ...DPNextFailureOption) *DPNextFailure {
	p := &DPNextFailure{planner: &DPNextFailurePlanner{
		d:        d,
		unitMean: unitMean,
		quanta:   150,
		nExact:   10,
		nApprox:  100,
		halfPlan: true,
	}}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Policy.
func (p *DPNextFailure) Name() string { return "DPNextFailure" }

// Start implements sim.Policy.
func (p *DPNextFailure) Start(job *sim.Job) error {
	if p.planner.quanta < 2 {
		return fmt.Errorf("policy: DPNextFailure needs at least 2 quanta, got %d", p.planner.quanta)
	}
	if !(p.planner.unitMean > 0) {
		return fmt.Errorf("policy: DPNextFailure: non-positive unit MTBF %v", p.planner.unitMean)
	}
	p.plan = nil
	p.failures = 0
	return nil
}

// OnFailure invalidates the current plan.
func (p *DPNextFailure) OnFailure(s *sim.State) {
	p.plan = nil
	p.failures = s.Failures
}

// NextChunk implements sim.Policy.
func (p *DPNextFailure) NextChunk(s *sim.State) float64 {
	if s.Failures != p.failures {
		p.plan = nil
		p.failures = s.Failures
	}
	if len(p.plan) == 0 {
		if s.Failures == 0 && len(s.FailedUnits) == 0 && s.Remaining == s.Job.Work {
			// Failure-free initial state: identical for every trace of the
			// scenario, so the plan is memoized on the shared planner.
			p.plan = p.planner.pristinePlan(s)
		} else {
			p.plan = p.planner.replan(s)
		}
	}
	if len(p.plan) == 0 {
		// Degenerate state (e.g. empirical law past its support): creep
		// forward one quantum at a time.
		return math.Min(s.Remaining, math.Max(s.Remaining/float64(p.planner.quanta), 1e-9))
	}
	chunk := p.plan[0]
	p.plan = p.plan[1:]
	return math.Min(chunk, s.Remaining)
}

// pristinePlan returns the memoized plan for a failure-free state. The
// plan slice is shared read-only: NextChunk only re-slices it.
func (pl *DPNextFailurePlanner) pristinePlan(s *sim.State) []float64 {
	key := pristineKey{remaining: s.Remaining, now: s.Now, c: s.Job.C, units: s.Job.Units}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if plan, ok := pl.pristine[key]; ok {
		return plan
	}
	plan := pl.replan(s)
	if pl.pristine == nil {
		pl.pristine = map[pristineKey][]float64{}
	}
	pl.pristine[key] = plan
	return plan
}

// taugroup is a group of units sharing (exactly or approximately) the same
// age since renewal.
type taugroup struct {
	tau    float64
	weight float64
}

// replan solves the truncated NextFailure DP and returns the chunk plan.
func (pl *DPNextFailurePlanner) replan(s *sim.State) []float64 {
	// Horizon truncation: min(remaining, 2 * platform MTBF) (§3.3). On
	// mid-size platforms 2*MTBF/p can span only a handful of optimal
	// chunks, which would make the quantum coarser than the decisions it
	// must resolve; we additionally cap the horizon at ~30 Young periods
	// so the quantum stays a small fraction of a chunk. At the paper's
	// Petascale/Exascale scales the 2*MTBF/p term is the smaller one and
	// the behavior is exactly the paper's.
	platformMTBF := pl.unitMean / float64(s.Job.Units)
	target := math.Min(s.Remaining, 2*platformMTBF)
	if young := 30 * math.Sqrt(2*s.Job.C*platformMTBF); young > 0 && young < target {
		target = young
	}
	if target <= 0 {
		return nil
	}
	truncated := target < s.Remaining*(1-1e-12)
	x := pl.quanta
	u := target / float64(x)

	groups := pl.buildGroups(s)
	grid := newSurvivalGrid(pl.d, groups, float64(x)*(u+s.Job.C)+u+s.Job.C)

	plan, _ := solveNextFailureDP(x, u, s.Job.C, grid)
	if truncated && pl.halfPlan && len(plan) > 1 {
		plan = plan[:(len(plan)+1)/2]
	}
	return plan
}

// buildGroups constructs the §3.3 approximate age state: the NExact
// smallest ages exactly, the rest binned onto NApprox survival-quantile
// reference values. Units that never failed share a single group (their
// age is simply Now), which keeps the construction O(#failed log #failed)
// even on million-unit platforms.
func (pl *DPNextFailurePlanner) buildGroups(s *sim.State) []taugroup {
	taus := make([]float64, 0, len(s.FailedUnits))
	for _, u := range s.FailedUnits {
		taus = append(taus, s.Tau(int(u)))
	}
	sort.Float64s(taus)
	neverCount := s.Job.Units - len(taus)
	neverTau := s.Now // renewal at trace time 0

	var groups []taugroup
	nExact := pl.nExact
	if nExact > len(taus) {
		nExact = len(taus)
	}
	for _, t := range taus[:nExact] {
		groups = append(groups, taugroup{tau: t, weight: 1})
	}
	rest := taus[nExact:]
	if len(rest)+boolToInt(neverCount > 0) <= pl.nApprox {
		// Few enough distinct ages: keep them all exactly.
		for _, t := range rest {
			groups = append(groups, taugroup{tau: t, weight: 1})
		}
		if neverCount > 0 {
			groups = append(groups, taugroup{tau: neverTau, weight: float64(neverCount)})
		}
		return groups
	}

	// Reference values: tau1 = smallest remaining age, tauM = largest;
	// intermediate values interpolate linearly in survival-probability
	// space (§3.3).
	tauLo := rest[0]
	tauHi := rest[len(rest)-1]
	if neverCount > 0 && neverTau > tauHi {
		tauHi = neverTau
	}
	m := pl.nApprox
	refs := make([]float64, m)
	refs[0] = tauLo
	refs[m-1] = tauHi
	sLo := pl.d.Survival(tauLo)
	sHi := pl.d.Survival(tauHi)
	for i := 2; i < m; i++ {
		q := float64(m-i)/float64(m-1)*sLo + float64(i-1)/float64(m-1)*sHi
		refs[i-1] = dist.InverseSurvival(pl.d, q)
	}
	sort.Float64s(refs)
	weights := make([]float64, m)
	assign := func(t float64, w float64) {
		// Nearest reference by age.
		i := sort.SearchFloat64s(refs, t)
		switch {
		case i == 0:
			weights[0] += w
		case i >= m:
			weights[m-1] += w
		case t-refs[i-1] <= refs[i]-t:
			weights[i-1] += w
		default:
			weights[i] += w
		}
	}
	for _, t := range rest {
		assign(t, 1)
	}
	if neverCount > 0 {
		assign(neverTau, float64(neverCount))
	}
	for i, w := range weights {
		if w > 0 {
			groups = append(groups, taugroup{tau: refs[i], weight: w})
		}
	}
	return groups
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// survivalGrid tabulates G(t) = sum_g w_g H(tau_g + t) on a uniform grid
// so the DP can evaluate joint success probabilities in O(1):
// Psuc over elapsed [a, b] = exp(G(a) - G(b)).
type survivalGrid struct {
	step float64
	g    []float64
}

func newSurvivalGrid(d dist.Distribution, groups []taugroup, tmax float64) *survivalGrid {
	// Resolution: fine enough that linear interpolation of the cumulative
	// hazard is accurate; 1024 points over the horizon suffices for the
	// smooth laws used here.
	const n = 1024
	sg := &survivalGrid{step: tmax / float64(n), g: make([]float64, n+2)}
	for j := range sg.g {
		t := float64(j) * sg.step
		var acc float64
		for _, gr := range groups {
			acc += gr.weight * d.CumHazard(gr.tau+t)
		}
		sg.g[j] = acc
	}
	return sg
}

// at linearly interpolates G(t).
func (sg *survivalGrid) at(t float64) float64 {
	if t <= 0 {
		return sg.g[0]
	}
	f := t / sg.step
	i := int(f)
	if i >= len(sg.g)-1 {
		return sg.g[len(sg.g)-1]
	}
	frac := f - float64(i)
	return sg.g[i]*(1-frac) + sg.g[i+1]*frac
}

// psuc returns the probability that no unit fails while elapsed time runs
// from a to b.
func (sg *survivalGrid) psuc(a, b float64) float64 {
	return math.Exp(sg.at(a) - sg.at(b))
}

// solveNextFailureDP runs Algorithm 2 on x quanta of size u with
// checkpoint cost c and returns the optimal chunk plan (chunk sizes in
// work time) along with its objective value, the expected work before the
// next failure. State (x', n): x' quanta remaining, n chunks committed;
// the elapsed execution time is (x-x')*u + n*c, which makes the whole
// transition structure expressible through the survival grid. G(a) is
// hoisted out of the candidate loop — every transition from a state shares
// the same start age.
func solveNextFailureDP(x int, u, c float64, grid *survivalGrid) ([]float64, float64) {
	stride := x + 1
	val := make([]float64, stride*stride)
	choice := make([]int32, stride*stride)
	idx := func(rem, n int) int { return rem*stride + n }

	for rem := 1; rem <= x; rem++ {
		maxN := x - rem
		for n := 0; n <= maxN; n++ {
			a := float64(x-rem)*u + float64(n)*c
			ga := grid.at(a)
			best := 0.0
			bestI := int32(0)
			for i := 1; i <= rem; i++ {
				b := a + float64(i)*u + c
				v := math.Exp(ga-grid.at(b)) * (float64(i)*u + val[idx(rem-i, n+1)])
				if v > best {
					best = v
					bestI = int32(i)
				}
			}
			val[idx(rem, n)] = best
			choice[idx(rem, n)] = bestI
		}
	}

	// Extract the plan from the initial state.
	var plan []float64
	rem, n := x, 0
	for rem > 0 {
		i := int(choice[idx(rem, n)])
		if i <= 0 {
			break
		}
		plan = append(plan, float64(i)*u)
		rem -= i
		n++
	}
	return plan, val[idx(x, 0)]
}

// PlanAndValue solves the DP for the given state and returns the full
// (untruncated-by-half) plan and its objective value, the expected work
// completed before the next failure. Used by tests to compare against the
// brute-force oracle of Proposition 3.
func (p *DPNextFailure) PlanAndValue(s *sim.State) ([]float64, float64) {
	pl := p.planner
	platformMTBF := pl.unitMean / float64(s.Job.Units)
	target := math.Min(s.Remaining, 2*platformMTBF)
	x := pl.quanta
	u := target / float64(x)
	groups := pl.buildGroups(s)
	grid := newSurvivalGrid(pl.d, groups, float64(x)*(u+s.Job.C)+u+s.Job.C)
	return solveNextFailureDP(x, u, s.Job.C, grid)
}
