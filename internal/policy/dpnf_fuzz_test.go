package policy

// FuzzDPNextFailureReplan feeds arbitrary (ages, remaining, now, quanta)
// states into the incremental re-planner with the frozen from-scratch
// reference as the oracle: in exact mode every plan must be bit-identical;
// in coarse mode the plan must merely be well-formed (the value bound is
// asserted by the differential suite, which can afford the closed-form
// oracle per state — the fuzzer's job is to hunt for panics and
// divergence on adversarial bit patterns).

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
)

func FuzzDPNextFailureReplan(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), 1e12, 5e5, 10, false)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), 1.0, 0.0, 2, true)
	f.Add(uint64(7), uint64(1<<40), uint64(12), uint64(99), 3e4, 1e9, 17, true)
	f.Add(^uint64(0), uint64(1), uint64(1<<63), uint64(5), 1e18, 1e3, 31, false)

	f.Fuzz(func(t *testing.T, a0, a1, a2, a3 uint64, remaining, now float64, quanta int, coarse bool) {
		// Clamp the raw inputs into a valid decision state: finite
		// non-negative clock, positive remaining work, quanta in the
		// supported range, and ages derived from the seed words so the
		// multiset shape (duplicates, zeros, huge spreads) is
		// fuzzer-controlled.
		if math.IsNaN(remaining) || math.IsInf(remaining, 0) || remaining <= 0 {
			remaining = 1e9
		}
		remaining = math.Min(remaining, 1e15)
		if math.IsNaN(now) || math.IsInf(now, 0) || now < 0 {
			now = 0
		}
		now = math.Min(now, 1e12)
		if quanta < 2 {
			quanta = 2
		}
		if quanta > 40 {
			quanta = 2 + quanta%39
		}

		const mean = 2e6
		job := &sim.Job{Work: remaining, C: 300, R: 300, D: 60, Units: 4}
		words := [4]uint64{a0, a1, a2, a3}
		renew := make([]float64, 4)
		var failed []int32
		var failures int
		for u := range renew {
			// Three low bits pick the unit's history: never failed, failed
			// with a word-derived age, or renewed mid-downtime (renewal
			// slightly in the future).
			switch words[u] % 3 {
			case 0:
				renew[u] = 0
			case 1:
				renew[u] = now * float64(words[u]%1024) / 1024
				failed = append(failed, int32(u))
				failures++
			default:
				renew[u] = now + 60*float64(words[u]%64)/64
				failed = append(failed, int32(u))
				failures++
			}
		}
		s := &sim.State{Job: job, Now: now, Remaining: remaining,
			LastRenewal: renew, FailedUnits: failed, Failures: failures}

		laws := []dist.Distribution{
			dist.NewExponentialMean(mean),
			dist.WeibullFromMeanShape(mean, 0.7),
		}
		for _, d := range laws {
			opts := []DPNextFailureOption{WithQuanta(quanta), WithStateApprox(2, 3)}
			if coarse && quanta > 2 {
				opts = append(opts, WithCoarseQuanta(2+int(a0%uint64(quanta-1))))
			}
			p := NewDPNextFailure(d, mean, opts...)
			if err := p.Start(job); err != nil {
				t.Fatalf("%s: Start: %v", d.Name(), err)
			}
			got := p.replan(s)
			for i, ch := range got {
				if math.IsNaN(ch) || ch < 0 || ch > remaining*(1+1e-9) {
					t.Fatalf("%s: chunk %d out of range: %v (plan %v)", d.Name(), i, ch, got)
				}
			}
			if coarse && failures > 0 && p.planner.coarse > 0 {
				continue // approximate by design; well-formedness checked above
			}
			want := p.planner.replanReference(s)
			if len(got) != len(want) {
				t.Fatalf("%s: plan length %d vs reference %d\n got %v\nwant %v", d.Name(), len(got), len(want), got, want)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: chunk %d = %x vs reference %x\n got %v\nwant %v",
						d.Name(), i, math.Float64bits(got[i]), math.Float64bits(want[i]), got, want)
				}
			}
			// Re-plan the identical state: the memo path must serve the
			// same bits.
			again := p.replan(s)
			for i := range again {
				if math.Float64bits(again[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: memoized chunk %d diverged", d.Name(), i)
				}
			}
		}
	})
}
