package policy

import (
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/sim"
)

// This file freezes the pre-incremental DPNextFailure solver verbatim as
// the differential-test oracle. replanReference is the from-scratch
// pipeline exactly as it shipped before the warm-start/slab rewrite:
// every allocation, every float operation, in the original order. The
// production replan must produce bit-identical plans in exact mode; the
// differential and fuzz suites (dpnf_differential_test.go,
// dpnf_fuzz_test.go) enforce that on randomized failure histories across
// every distribution family. Do not "improve" this code — its value is
// that it does not change.

// replanReference solves the truncated NextFailure DP from scratch and
// returns the chunk plan. It is the oracle for the incremental replan.
func (pl *DPNextFailurePlanner) replanReference(s *sim.State) []float64 {
	platformMTBF := pl.unitMean / float64(s.Job.Units)
	target := math.Min(s.Remaining, 2*platformMTBF)
	if young := 30 * math.Sqrt(2*s.Job.C*platformMTBF); young > 0 && young < target {
		target = young
	}
	if target <= 0 {
		return nil
	}
	truncated := target < s.Remaining*(1-1e-12)
	x := pl.quanta
	u := target / float64(x)

	groups := pl.buildGroupsReference(s)
	grid := newSurvivalGridReference(pl.d, groups, float64(x)*(u+s.Job.C)+u+s.Job.C)

	plan, _ := solveNextFailureDPReference(x, u, s.Job.C, grid)
	if truncated && pl.halfPlan && len(plan) > 1 {
		plan = plan[:(len(plan)+1)/2]
	}
	return plan
}

// buildGroupsReference is the frozen §3.3 age-group construction.
func (pl *DPNextFailurePlanner) buildGroupsReference(s *sim.State) []taugroup {
	taus := make([]float64, 0, len(s.FailedUnits))
	for _, u := range s.FailedUnits {
		taus = append(taus, s.Tau(int(u)))
	}
	sort.Float64s(taus)
	neverCount := s.Job.Units - len(taus)
	neverTau := s.Now // renewal at trace time 0

	var groups []taugroup
	nExact := pl.nExact
	if nExact > len(taus) {
		nExact = len(taus)
	}
	for _, t := range taus[:nExact] {
		groups = append(groups, taugroup{tau: t, weight: 1})
	}
	rest := taus[nExact:]
	if len(rest)+boolToInt(neverCount > 0) <= pl.nApprox {
		for _, t := range rest {
			groups = append(groups, taugroup{tau: t, weight: 1})
		}
		if neverCount > 0 {
			groups = append(groups, taugroup{tau: neverTau, weight: float64(neverCount)})
		}
		return groups
	}

	tauLo := rest[0]
	tauHi := rest[len(rest)-1]
	if neverCount > 0 && neverTau > tauHi {
		tauHi = neverTau
	}
	m := pl.nApprox
	refs := make([]float64, m)
	refs[0] = tauLo
	refs[m-1] = tauHi
	sLo := pl.d.Survival(tauLo)
	sHi := pl.d.Survival(tauHi)
	for i := 2; i < m; i++ {
		q := float64(m-i)/float64(m-1)*sLo + float64(i-1)/float64(m-1)*sHi
		refs[i-1] = dist.InverseSurvival(pl.d, q)
	}
	sort.Float64s(refs)
	weights := make([]float64, m)
	assign := func(t float64, w float64) {
		i := sort.SearchFloat64s(refs, t)
		switch {
		case i == 0:
			weights[0] += w
		case i >= m:
			weights[m-1] += w
		case t-refs[i-1] <= refs[i]-t:
			weights[i-1] += w
		default:
			weights[i] += w
		}
	}
	for _, t := range rest {
		assign(t, 1)
	}
	if neverCount > 0 {
		assign(neverTau, float64(neverCount))
	}
	for i, w := range weights {
		if w > 0 {
			groups = append(groups, taugroup{tau: refs[i], weight: w})
		}
	}
	return groups
}

// newSurvivalGridReference is the frozen interface-dispatched grid fill.
func newSurvivalGridReference(d dist.Distribution, groups []taugroup, tmax float64) *survivalGrid {
	const n = 1024
	sg := &survivalGrid{step: tmax / float64(n), g: make([]float64, n+2)}
	for j := range sg.g {
		t := float64(j) * sg.step
		var acc float64
		for _, gr := range groups {
			acc += gr.weight * d.CumHazard(gr.tau+t)
		}
		sg.g[j] = acc
	}
	return sg
}

// solveNextFailureDPReference is the frozen Algorithm 2 solve: fresh
// value/argmin tables per call, no candidate pruning.
func solveNextFailureDPReference(x int, u, c float64, grid *survivalGrid) ([]float64, float64) {
	stride := x + 1
	val := make([]float64, stride*stride)
	choice := make([]int32, stride*stride)
	idx := func(rem, n int) int { return rem*stride + n }

	for rem := 1; rem <= x; rem++ {
		maxN := x - rem
		for n := 0; n <= maxN; n++ {
			a := float64(x-rem)*u + float64(n)*c
			ga := grid.at(a)
			best := 0.0
			bestI := int32(0)
			for i := 1; i <= rem; i++ {
				b := a + float64(i)*u + c
				v := math.Exp(ga-grid.at(b)) * (float64(i)*u + val[idx(rem-i, n+1)])
				if v > best {
					best = v
					bestI = int32(i)
				}
			}
			val[idx(rem, n)] = best
			choice[idx(rem, n)] = bestI
		}
	}

	var plan []float64
	rem, n := x, 0
	for rem > 0 {
		i := int(choice[idx(rem, n)])
		if i <= 0 {
			break
		}
		plan = append(plan, float64(i)*u)
		rem -= i
		n++
	}
	return plan, val[idx(x, 0)]
}
