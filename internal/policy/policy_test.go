package policy

import (
	"context"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/theory"
	"repro/internal/trace"
)

func TestYoungDalyPeriods(t *testing.T) {
	const c, mtbf, d, r = 600.0, 86400.0, 60.0, 600.0
	young := NewYoung(c, mtbf)
	wantYoung := math.Sqrt(2 * c * mtbf)
	if math.Abs(young.Period()-wantYoung) > 1e-9 {
		t.Errorf("Young period %v, want %v", young.Period(), wantYoung)
	}
	low := NewDalyLow(c, mtbf, d, r)
	wantLow := math.Sqrt(2 * c * (mtbf + d + r))
	if math.Abs(low.Period()-wantLow) > 1e-9 {
		t.Errorf("DalyLow period %v, want %v", low.Period(), wantLow)
	}
	if low.Period() <= young.Period() {
		t.Error("DalyLow must exceed Young (it adds D+R to the MTBF)")
	}
	high := NewDalyHigh(c, mtbf)
	if high.Period() <= 0 {
		t.Errorf("DalyHigh period %v", high.Period())
	}
	// The higher-order estimate is below the first-order one (the -C term).
	if high.Period() >= young.Period() {
		t.Errorf("DalyHigh %v should be below Young %v for these parameters", high.Period(), young.Period())
	}
}

func TestDalyHighLargeCRegime(t *testing.T) {
	// When C >= 2M Daly's estimate degenerates to the MTBF itself.
	p := NewDalyHigh(500, 200)
	if p.Period() != 200 {
		t.Errorf("DalyHigh period %v, want MTBF 200", p.Period())
	}
}

func TestPeriodicPolicyBehaviour(t *testing.T) {
	p := NewPeriodic("test", 100)
	job := &sim.Job{Work: 250, C: 10, R: 10, D: 10, Units: 1}
	if err := p.Start(job); err != nil {
		t.Fatal(err)
	}
	s := &sim.State{Job: job, Remaining: 250}
	if got := p.NextChunk(s); got != 100 {
		t.Errorf("chunk = %v", got)
	}
	s.Remaining = 42
	if got := p.NextChunk(s); got != 42 {
		t.Errorf("tail chunk = %v", got)
	}
	bad := NewPeriodic("bad", 0)
	if err := bad.Start(job); err == nil {
		t.Error("zero period accepted")
	}
	inf := NewPeriodic("inf", math.Inf(1))
	if err := inf.Start(job); err == nil {
		t.Error("infinite period accepted")
	}
}

func TestOptExpMatchesTheory(t *testing.T) {
	const w, c = 698000.0, 600.0
	rate := 45208.0 / (125 * 365 * 86400)
	p, err := NewOptExp(w, rate, c)
	if err != nil {
		t.Fatal(err)
	}
	_, kStar, period, err := theory.OptimalExp(w, rate, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Period()-period) > 1e-9 {
		t.Errorf("OptExp period %v, want %v (K*=%d)", p.Period(), period, kStar)
	}
	if _, err := NewOptExp(-1, rate, c); err == nil {
		t.Error("invalid work accepted")
	}
}

func TestOptExpNearDalyHighForSmallLambdaC(t *testing.T) {
	// §5.1.1: DalyHigh and OptExp behave almost identically.
	const w, c = 698000.0, 600.0
	rate := 45208.0 / (125 * 365 * 86400)
	opt := MustOptExp(w, rate, c)
	high := NewDalyHigh(c, 1/rate)
	ratio := opt.Period() / high.Period()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("OptExp %v vs DalyHigh %v: ratio %v", opt.Period(), high.Period(), ratio)
	}
}

func TestBouguerraExponentialClosesToOptExp(t *testing.T) {
	// With k=1 the rejuvenation assumption is harmless (memorylessness):
	// Bouguerra's period should be within a few percent of OptExp's.
	const w, c, d, r = 698000.0, 600.0, 60.0, 600.0
	units := 45208
	procMean := 125.0 * 365 * 86400
	e := dist.NewExponentialMean(procMean)
	b, err := NewBouguerra(w, units, e, c, d, r)
	if err != nil {
		t.Fatal(err)
	}
	opt := MustOptExp(w, float64(units)/procMean, c)
	ratio := b.Period() / opt.Period()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("Bouguerra %v vs OptExp %v (ratio %v)", b.Period(), opt.Period(), ratio)
	}
}

func TestBouguerraOverCheckpointsForSmallShape(t *testing.T) {
	// §5.2.2: under Weibull k<1 the fresh-platform assumption inflates the
	// early failure rate, so Bouguerra picks a much shorter period than
	// OptExp-with-matching-MTBF.
	const w, c, d, r = 698000.0, 600.0, 60.0, 600.0
	units := 45208
	procMean := 125.0 * 365 * 86400
	wb := dist.WeibullFromMeanShape(procMean, 0.7)
	b, err := NewBouguerra(w, units, wb, c, d, r)
	if err != nil {
		t.Fatal(err)
	}
	opt := MustOptExp(w, float64(units)/procMean, c)
	if b.Period() >= opt.Period() {
		t.Errorf("Bouguerra period %v should be below OptExp %v under k=0.7", b.Period(), opt.Period())
	}
	if b.Period() < 0.05*opt.Period() {
		t.Errorf("Bouguerra period %v implausibly small vs OptExp %v", b.Period(), opt.Period())
	}
}

func TestBouguerraUnsupportedDistribution(t *testing.T) {
	emp := dist.NewEmpirical([]float64{1, 2, 3})
	if _, err := NewBouguerra(1000, 4, emp, 10, 1, 10); err == nil {
		t.Error("Bouguerra should reject empirical laws")
	}
}

func TestLiuExponentialFeasible(t *testing.T) {
	// Single processor, moderate MTBF: the schedule must exist with
	// strictly increasing dates and intervals above C.
	e := dist.NewExponentialMean(86400)
	l, err := NewLiu(20*86400, 1, e, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Feasible() {
		t.Fatal("Liu schedule infeasible for 1-proc exponential")
	}
	dates := l.Dates()
	if len(dates) < 2 {
		t.Fatalf("schedule too short: %d dates", len(dates))
	}
	prev := 0.0
	for i, d := range dates {
		if d-prev <= 600 {
			t.Fatalf("interval %d = %v <= C", i, d-prev)
		}
		prev = d
	}
}

func TestLiuIntervalsGrowForDecreasingHazard(t *testing.T) {
	// For k<1 the frequency function decreases, so intervals lengthen.
	wb := dist.WeibullFromMeanShape(86400, 0.7)
	l, err := NewLiu(5*86400, 1, wb, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Feasible() {
		t.Skip("schedule infeasible at this scale")
	}
	dates := l.Dates()
	if len(dates) < 4 {
		t.Skip("not enough dates")
	}
	first := dates[1] - dates[0]
	later := dates[3] - dates[2]
	if later < first {
		t.Errorf("intervals should grow: first=%v later=%v", first, later)
	}
}

func TestLiuInfeasibleOnLargePlatforms(t *testing.T) {
	// §5.2.2 footnote 2 and §5.2.2's Figure 5 discussion: for small shape
	// parameters and large platforms Liu's early checkpoint intervals fall
	// below C and the schedule is nonsensical. Our reconstruction turns
	// infeasible at Exascale scale for k=0.7 and already at Petascale
	// scale for k=0.5.
	cases := []struct {
		shape float64
		units int
	}{
		{0.7, 1 << 20}, // Exascale, k = 0.7
		{0.5, 45208},   // Petascale, k = 0.5
		{0.33, 45208},  // Petascale, smallest published LANL shape
	}
	for _, cse := range cases {
		wb := dist.WeibullFromMeanShape(125*365*86400, cse.shape)
		l, err := NewLiu(698000, cse.units, wb, 600)
		if err != nil {
			t.Fatal(err)
		}
		if l.Feasible() {
			t.Errorf("k=%v units=%d: Liu should be infeasible", cse.shape, cse.units)
			continue
		}
		job := &sim.Job{Work: 698000, C: 600, R: 600, D: 60, Units: cse.units}
		if err := l.Start(job); err == nil {
			t.Errorf("k=%v units=%d: Start should fail", cse.shape, cse.units)
		}
	}
}

func TestLiuShortEarlyIntervalsAtPetascaleWeibull(t *testing.T) {
	// At k=0.7 / 45,208 processors our reconstruction remains (barely)
	// feasible but its early intervals are several times shorter than the
	// optimal ~3,000-6,000 s chunks, which is what drives Liu's poor
	// degradation in the paper's Figure 4.
	wb := dist.WeibullFromMeanShape(125*365*86400, 0.7)
	l, err := NewLiu(698000, 45208, wb, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Feasible() {
		t.Skip("schedule infeasible at this scale in this reconstruction")
	}
	dates := l.Dates()
	if first := dates[0]; first-600 > 2000 {
		t.Errorf("first Liu work interval %v s; expected well below the ~3,000 s optimum", first-600)
	}
}

func TestLiuThroughSimulator(t *testing.T) {
	e := dist.NewExponentialMean(7200)
	l, err := NewLiu(20000, 1, e, 60)
	if err != nil {
		t.Fatal(err)
	}
	ts := trace.GenerateRenewal(e, 1, 1e8, 60, 3)
	job := &sim.Job{Work: 20000, C: 60, R: 60, D: 60, Units: 1}
	res, err := sim.Run(context.Background(), job, l, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkTime < 20000-1e-6 {
		t.Errorf("Liu run did not complete the work: %+v", res)
	}
	if e := res.AccountingError(); math.Abs(e) > 1e-6 {
		t.Errorf("accounting error %v", e)
	}
}

func TestLiuRejectsUnsupported(t *testing.T) {
	emp := dist.NewEmpirical([]float64{1, 2, 3})
	if _, err := NewLiu(100, 1, emp, 1); err == nil {
		t.Error("Liu should reject empirical laws")
	}
	if _, err := NewLiu(0, 1, dist.NewExponentialMean(10), 1); err == nil {
		t.Error("Liu should reject zero work")
	}
}

func TestAggregateRenewal(t *testing.T) {
	e := dist.NewExponentialMean(1000)
	ae, err := AggregateRenewal(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ae.Mean()-100) > 1e-9 {
		t.Errorf("aggregated exponential mean %v, want 100", ae.Mean())
	}
	w := dist.NewWeibull(0.5, 1000)
	aw, err := AggregateRenewal(w, 16)
	if err != nil {
		t.Fatal(err)
	}
	ww := aw.(dist.Weibull)
	// scale / p^(1/k) = 1000 / 16^2 = 3.90625.
	if math.Abs(ww.Scale-1000.0/256) > 1e-9 || ww.Shape != 0.5 {
		t.Errorf("aggregated weibull = %+v", ww)
	}
	// Sanity: survival of the aggregate equals the product of unit
	// survivals (law of the minimum).
	for _, x := range []float64{10, 100, 1000} {
		want := math.Pow(w.Survival(x), 16)
		if got := aw.Survival(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("min-law survival at %v: %v vs %v", x, got, want)
		}
	}
}
