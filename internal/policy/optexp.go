package policy

import (
	"fmt"

	"repro/internal/theory"
)

// NewOptExp returns the paper's analytically optimal periodic policy for
// Exponential failures (Theorem 1 / Proposition 5): the work W(p) is split
// into K* equal chunks where K* derives from the Lambert W function
// evaluated on the aggregated platform failure rate.
//
// work is W(p), platformRate is p*lambda (the aggregated macro-processor
// rate), and c is C(p). Following the paper, OptExp is also applied to
// Weibull and log-based failures by pretending they are Exponential with
// the same MTBF (§4.1).
func NewOptExp(work, platformRate, c float64) (*Periodic, error) {
	_, kStar, period, err := theory.OptimalExp(work, platformRate, c)
	if err != nil {
		return nil, fmt.Errorf("policy: OptExp: %w", err)
	}
	if kStar < 1 || !(period > 0) {
		return nil, fmt.Errorf("policy: OptExp produced invalid K*=%d period=%v", kStar, period)
	}
	return NewPeriodic("OptExp", period), nil
}

// MustOptExp is NewOptExp for static configurations known to be valid.
func MustOptExp(work, platformRate, c float64) *Periodic {
	p, err := NewOptExp(work, platformRate, c)
	if err != nil {
		panic(fmt.Sprintf("policy: MustOptExp(%v, %v, %v): %v", work, platformRate, c, err))
	}
	return p
}
