package policy

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/theory"
)

// NewBouguerra reconstructs the periodic policy of Bouguerra et al. [5].
// Their analysis proves the optimal policy periodic for Exponential and
// Weibull failures under the (unstated, §7) assumption that *all*
// processors are rejuvenated after every failure and every checkpoint, so
// each chunk attempt faces a brand-new platform whose failures follow the
// aggregate law: Exponential with rate p*lambda, or Weibull with scale
// lambda/p^(1/k) and unchanged shape.
//
// Under that renewal model the expected makespan of K equal chunks is
// separable, K * E[time to complete one chunk], with
//
//	E[chunk(omega)] = omega + C + (1-P)/P * (E(Tlost(omega+C|0)) + E(Trec)),
//	P = Psuc(omega + C | 0) on the fresh platform,
//
// which this constructor minimizes over K by exhaustive scan. For k = 1
// this coincides with OptExp; for k << 1 the fresh-platform assumption
// overestimates the early failure rate and the policy over-checkpoints,
// reproducing the degradations reported in §5.2.2.
func NewBouguerra(work float64, units int, d dist.Distribution, c, down, rec float64) (*Periodic, error) {
	if units <= 0 {
		return nil, fmt.Errorf("policy: Bouguerra: non-positive unit count %d", units)
	}
	if !(work > 0) {
		return nil, fmt.Errorf("policy: Bouguerra: non-positive work %v", work)
	}
	plat, err := aggregateRenewal(d, units)
	if err != nil {
		return nil, fmt.Errorf("policy: Bouguerra: %w", err)
	}
	eTrec := theory.ExpTrec(plat, down, rec)

	chunkCost := func(omega float64) float64 {
		p := plat.CondSurvival(omega+c, 0)
		if p <= 0 {
			return math.Inf(1)
		}
		return omega + c + (1-p)/p*(theory.ExpTlost(plat, omega+c, 0)+eTrec)
	}

	// Scan K; chunks below the checkpoint cost are never worthwhile, which
	// bounds the search.
	kMax := int(math.Ceil(work/math.Max(c, 1))) + 2
	if kMax > 200000 {
		kMax = 200000
	}
	best := math.Inf(1)
	bestK := 1
	for k := 1; k <= kMax; k++ {
		v := float64(k) * chunkCost(work/float64(k))
		if v < best {
			best, bestK = v, k
		}
		// The objective is unimodal in practice; once we are far past the
		// minimum, stop.
		if k > bestK+64 && v > 1.5*best {
			break
		}
	}
	if math.IsInf(best, 1) {
		return nil, fmt.Errorf("policy: Bouguerra: no feasible chunk count")
	}
	return NewPeriodic("Bouguerra", work/float64(bestK)), nil
}

// aggregateRenewal returns the platform-level failure law under the
// rejuvenate-everything assumption: the distribution of the minimum of
// `units` iid lifetimes.
func aggregateRenewal(d dist.Distribution, units int) (dist.Distribution, error) {
	switch dd := d.(type) {
	case dist.Exponential:
		return dist.NewExponentialRate(dd.Lambda * float64(units)), nil
	case dist.Weibull:
		return dist.NewWeibull(dd.Shape, dd.Scale/math.Pow(float64(units), 1/dd.Shape)), nil
	default:
		return nil, fmt.Errorf("no closed-form aggregate for %s", d.Name())
	}
}
