// Package theory implements the closed-form results of the paper:
//
//   - Lemma 1: expected lost time E(Tlost) and recovery time E(Trec) under
//     Exponential failures (ExpTlostExp, ExpTrec);
//   - Theorem 1: the optimal periodic strategy for a single processor
//     under Exponential failures — the paper's first rigorous proof that
//     periodic checkpointing is optimal — with the optimal chunk count
//     expressed through the Lambert W function (OptimalExp,
//     ExpectedMakespanExp);
//   - Proposition 5: the parallel-job form of Theorem 1 on the aggregated
//     platform law (reached through the same OptimalExp with rate
//     p*lambda);
//   - the generic E(Tlost(x|tau)) of §2.3 for arbitrary distributions
//     (ExpTlost; Weibull uses a closed incomplete-gamma form, others
//     adaptive quadrature), consumed by the dynamic programs;
//   - Proposition 3: the expected work completed before the next failure,
//     the oracle the DPNextFailure tests compare against;
//   - the §3.1 platform-MTBF analysis behind Figure 1
//     (PlatformMTBFRejuvenateAll vs PlatformMTBFSingleRejuvenation).
package theory
