package theory

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/specialfn"
)

// ---------------------------------------------------------------------------
// Lemma 1 — Exponential closed forms
// ---------------------------------------------------------------------------

// ExpTlostExp returns E(Tlost(omega)) for Exponential(lambda) failures:
// the expected computation time wasted before a failure, knowing the
// failure strikes within the next omega time units (Lemma 1):
// 1/lambda - omega/(e^(lambda omega) - 1).
func ExpTlostExp(lambda, omega float64) float64 {
	if omega <= 0 {
		return 0
	}
	x := lambda * omega
	if x < 1e-8 {
		// Series: omega/2 - lambda*omega^2/12 + ...
		return omega/2 - x*omega/12
	}
	return 1/lambda - omega/math.Expm1(x)
}

// ExpTrecExp returns E(Trec) for Exponential(lambda) failures: the expected
// time to complete a downtime and a successful recovery, accounting for
// failures striking during recovery (Lemma 1):
// D + R + (1-e^(-lambda R))/e^(-lambda R) * (D + E(Tlost(R))).
func ExpTrecExp(lambda, d, r float64) float64 {
	return d + r + math.Expm1(lambda*r)*(d+ExpTlostExp(lambda, r))
}

// ---------------------------------------------------------------------------
// Theorem 1 / Proposition 5 — the optimal strategy under Exponential failures
// ---------------------------------------------------------------------------

// PsiExp returns psi(K) = K (e^(lambda(W/K + C)) - 1), the quantity
// minimized by the optimal chunk count (Theorem 1). K may be fractional for
// use in root-finding and tests.
func PsiExp(k, w, lambda, c float64) float64 {
	return k * math.Expm1(lambda*(w/k+c))
}

// OptimalExp solves Theorem 1: for W units of work under Exponential(lambda)
// failures and checkpoint cost C, it returns the real-valued optimizer K0 =
// lambda W / (1 + L(-e^(-lambda C - 1))), the optimal integer chunk count
// K*, and the optimal chunk size (period) W/K*.
func OptimalExp(w, lambda, c float64) (k0 float64, kStar int, period float64, err error) {
	if !(w > 0) || !(lambda > 0) || !(c >= 0) {
		return 0, 0, 0, fmt.Errorf("theory: invalid OptimalExp arguments w=%v lambda=%v c=%v", w, lambda, c)
	}
	l, lerr := specialfn.LambertW0(-math.Exp(-lambda*c - 1))
	if lerr != nil {
		return 0, 0, 0, fmt.Errorf("theory: Lambert evaluation failed: %w", lerr)
	}
	k0 = lambda * w / (1 + l)
	lo := int(math.Floor(k0))
	if lo < 1 {
		lo = 1
	}
	hi := int(math.Ceil(k0))
	if hi < 1 {
		hi = 1
	}
	kStar = lo
	if hi != lo && PsiExp(float64(hi), w, lambda, c) < PsiExp(float64(lo), w, lambda, c) {
		kStar = hi
	}
	return k0, kStar, w / float64(kStar), nil
}

// OptimalExpParallel solves Proposition 5: the optimal strategy for a
// parallel job on p processors with iid Exponential(lambda) failures is the
// sequential optimum of the aggregated macro-processor with rate p*lambda,
// work W(p) and checkpoint cost C(p).
func OptimalExpParallel(wp float64, p int, lambda, cp float64) (k0 float64, kStar int, period float64, err error) {
	if p <= 0 {
		return 0, 0, 0, fmt.Errorf("theory: non-positive processor count %d", p)
	}
	return OptimalExp(wp, float64(p)*lambda, cp)
}

// ExpectedMakespanExpK returns the expected makespan of the K-chunk
// periodic strategy under Exponential(lambda) failures (from the proof of
// Theorem 1): K (e^(lambda R) (1/lambda + D)) (e^(lambda(W/K+C)) - 1).
func ExpectedMakespanExpK(w, lambda, c, d, r float64, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("theory: chunk count %d < 1", k))
	}
	return math.Exp(lambda*r) * (1/lambda + d) * PsiExp(float64(k), w, lambda, c)
}

// ExpectedMakespanExp returns E(T*(W)), the optimal expected makespan of
// Theorem 1.
func ExpectedMakespanExp(w, lambda, c, d, r float64) (float64, error) {
	_, kStar, _, err := OptimalExp(w, lambda, c)
	if err != nil {
		return 0, err
	}
	return ExpectedMakespanExpK(w, lambda, c, d, r, kStar), nil
}

// ---------------------------------------------------------------------------
// Generic distributions — E(Tlost), E(Trec) (Proposition 1 machinery)
// ---------------------------------------------------------------------------

// ExpTlost returns E(Tlost(x|tau)): the expected computation time before a
// failure, knowing the failure strikes within the next x time units and the
// last renewal was tau units ago. A closed-form incomplete-gamma path is
// used for Weibull; everything else integrates the conditional survival
// numerically (E = [∫₀ˣ Sτ(t)dt - x Sτ(x)] / (1 - Sτ(x))).
func ExpTlost(d dist.Distribution, x, tau float64) float64 {
	if x <= 0 {
		return 0
	}
	if tau < 0 {
		tau = 0
	}
	switch dd := d.(type) {
	case dist.Exponential:
		return ExpTlostExp(dd.Lambda, x)
	case dist.Weibull:
		if v, ok := expTlostWeibull(dd, x, tau); ok {
			return v
		}
	}
	return expTlostNumeric(d, x, tau)
}

// expTlostWeibull evaluates E(Tlost(x|tau)) in closed form:
// with S the Weibull survival and f its density,
//
//	E = [∫_tau^{tau+x} s f(s) ds - tau (S(tau)-S(tau+x))] / (S(tau)-S(tau+x))
//
// and ∫ s f(s) ds = scale * [γ(1+1/k, H(b)) - γ(1+1/k, H(a))] with H the
// cumulative hazard. Returns ok=false when the failure probability over the
// window is too small for the difference to be meaningful; callers fall
// back to the numeric path.
func expTlostWeibull(w dist.Weibull, x, tau float64) (float64, bool) {
	ha := w.CumHazard(tau)
	hb := w.CumHazard(tau + x)
	sa := math.Exp(-ha)
	sb := math.Exp(-hb)
	deltaS := sa - sb
	if deltaS < 1e-14 {
		// Failure within the window is a ~zero-probability event; the
		// conditional density is flat to first order.
		return x / 2, true
	}
	a := 1 + 1/w.Shape
	gb, err1 := specialfn.GammaLowerIncomplete(a, hb)
	ga, err2 := specialfn.GammaLowerIncomplete(a, ha)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	integral := w.Scale * (gb - ga)
	v := (integral - tau*deltaS) / deltaS
	// Guard against catastrophic cancellation for tau >> x: the result must
	// lie in [0, x]; outside that, use the numeric path.
	if v < -1e-9*x || v > x*(1+1e-9) || math.IsNaN(v) {
		return 0, false
	}
	return math.Min(math.Max(v, 0), x), true
}

func expTlostNumeric(d dist.Distribution, x, tau float64) float64 {
	sx := d.CondSurvival(x, tau)
	pFail := 1 - sx
	if pFail < 1e-14 {
		return x / 2
	}
	integral := specialfn.AdaptiveSimpson(func(t float64) float64 {
		return d.CondSurvival(t, tau)
	}, 0, x, 1e-10*x)
	v := (integral - x*sx) / pFail
	return math.Min(math.Max(v, 0), x)
}

// ExpTrec returns E(Trec): the expected duration from a failure to the end
// of the first successful recovery, with downtime d, recovery time r, and
// failures (renewing at each recovery start) that may strike during
// recovery (Proposition 1):
//
//	E(Trec) = D + R + (1-Psuc(R|0))/Psuc(R|0) (D + E(Tlost(R|0))).
func ExpTrec(fd dist.Distribution, d, r float64) float64 {
	if e, ok := fd.(dist.Exponential); ok {
		return ExpTrecExp(e.Lambda, d, r)
	}
	psuc := fd.CondSurvival(r, 0)
	if psuc <= 0 {
		return math.Inf(1)
	}
	return d + r + (1-psuc)/psuc*(d+ExpTlost(fd, r, 0))
}

// ---------------------------------------------------------------------------
// Proposition 3 — expected work before the next failure
// ---------------------------------------------------------------------------

// ExpectedWorkBeforeFailure evaluates Proposition 3's objective for a given
// chunk sequence on a single processor (or aggregated state): the expected
// amount of work completed before the next failure,
//
//	E(W) = sum_i omega_i * prod_{j<=i} Psuc(omega_j + C | t_j),
//
// where t_j = tau0 + sum_{l<j} (omega_l + C). It is the brute-force oracle
// used to validate DPNextFailure.
func ExpectedWorkBeforeFailure(d dist.Distribution, tau0, c float64, chunks []float64) float64 {
	expected := 0.0
	prob := 1.0
	t := tau0
	for _, w := range chunks {
		prob *= d.CondSurvival(w+c, t)
		expected += w * prob
		t += w + c
	}
	return expected
}

// ExpectedWorkBeforeFailureMulti is the parallel-job version: the success
// probability of each chunk is the product over processors of their
// conditional survivals (§3.3).
func ExpectedWorkBeforeFailureMulti(d dist.Distribution, taus []float64, c float64, chunks []float64) float64 {
	expected := 0.0
	prob := 1.0
	elapsed := 0.0
	for _, w := range chunks {
		step := w + c
		for _, tau := range taus {
			prob *= d.CondSurvival(step, tau+elapsed)
		}
		expected += w * prob
		elapsed += step
	}
	return expected
}

// ---------------------------------------------------------------------------
// §3.1 — platform MTBF under the two rejuvenation models (Figure 1)
// ---------------------------------------------------------------------------

// PlatformMTBFRejuvenateAll returns the platform MTBF when every failure
// rejuvenates all p processors: platform failures then follow a Weibull
// with scale lambda/p^(1/k), so the MTBF is D + mu/p^(1/k).
func PlatformMTBFRejuvenateAll(w dist.Weibull, p int, d float64) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("theory: non-positive processor count %d", p))
	}
	return d + w.Mean()/math.Pow(float64(p), 1/w.Shape)
}

// PlatformMTBFSingleRejuvenation returns the platform MTBF when only the
// failed processor is rejuvenated: each processor fails with long-run rate
// 1/(D + mu), so the platform MTBF is (D + mu)/p.
func PlatformMTBFSingleRejuvenation(mean float64, p int, d float64) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("theory: non-positive processor count %d", p))
	}
	return (d + mean) / float64(p)
}
