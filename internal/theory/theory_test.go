package theory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/specialfn"
)

func TestExpTlostExpClosedForm(t *testing.T) {
	// Cross-check Lemma 1 against direct numerical integration of
	// E[X | X < omega] for the exponential density.
	lambda := 1.0 / 3600
	for _, omega := range []float64{100, 1000, 3600, 20000} {
		pFail := -math.Expm1(-lambda * omega)
		integral := specialfn.AdaptiveSimpson(func(x float64) float64 {
			return x * lambda * math.Exp(-lambda*x)
		}, 0, omega, 1e-9)
		want := integral / pFail
		got := ExpTlostExp(lambda, omega)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("ExpTlostExp(%v) = %v, want %v", omega, got, want)
		}
	}
}

func TestExpTlostExpSmallOmega(t *testing.T) {
	// For tiny windows the conditional mean tends to omega/2.
	lambda := 1e-9
	omega := 1.0
	if got := ExpTlostExp(lambda, omega); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("small-window ExpTlost = %v, want ~0.5", got)
	}
	if ExpTlostExp(lambda, 0) != 0 {
		t.Error("ExpTlostExp(0) should be 0")
	}
}

func TestExpTlostBounds(t *testing.T) {
	// 0 <= E(Tlost(x|tau)) <= x for every distribution.
	dists := []dist.Distribution{
		dist.NewExponentialMean(3600),
		dist.WeibullFromMeanShape(3600, 0.7),
		dist.WeibullFromMeanShape(125*365*86400, 0.7),
		dist.GammaFromMeanShape(3600, 0.7),
		dist.LogNormalFromMeanSigma(3600, 1.2),
	}
	for _, d := range dists {
		d := d
		f := func(rx, rt float64) bool {
			x := math.Mod(math.Abs(rx), 4*3600) + 1
			tau := math.Mod(math.Abs(rt), 10*3600)
			v := ExpTlost(d, x, tau)
			return v >= 0 && v <= x && !math.IsNaN(v)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestExpTlostWeibullMatchesNumeric(t *testing.T) {
	// The incomplete-gamma fast path must agree with the generic
	// conditional-survival integration.
	for _, w := range []dist.Weibull{
		dist.WeibullFromMeanShape(3600, 0.7),
		dist.WeibullFromMeanShape(86400, 0.5),
		dist.NewWeibull(1.5, 1000),
	} {
		for _, tau := range []float64{0, 500, 5000} {
			for _, x := range []float64{100, 1000, 10000} {
				fast := ExpTlost(w, x, tau)
				slow := expTlostNumeric(w, x, tau)
				if math.Abs(fast-slow) > 1e-5*x {
					t.Errorf("%s x=%v tau=%v: gamma path %v vs numeric %v", w.Name(), x, tau, fast, slow)
				}
			}
		}
	}
}

func TestExpTlostWeibullShape1MatchesExponential(t *testing.T) {
	w := dist.NewWeibull(1, 3600)
	e := dist.NewExponentialMean(3600)
	for _, x := range []float64{10, 360, 3600, 36000} {
		gw := ExpTlost(w, x, 1234) // tau irrelevant for k=1
		ge := ExpTlost(e, x, 0)
		if math.Abs(gw-ge) > 1e-6*x {
			t.Errorf("x=%v: weibull(1) %v vs exp %v", x, gw, ge)
		}
	}
}

func TestExpTlostMonteCarlo(t *testing.T) {
	// Monte-Carlo validation of E(Tlost(x|tau)) for a decreasing-hazard
	// Weibull at nonzero tau.
	w := dist.WeibullFromMeanShape(5000, 0.7)
	const tau, x = 2000.0, 3000.0
	want := ExpTlost(w, x, tau)
	// Sample X | X >= tau via rejection; accumulate X-tau where X < tau+x.
	r := rng.New(2024)
	var sum float64
	var count int
	for i := 0; i < 2000000 && count < 100000; i++ {
		v := w.Sample(r)
		if v < tau {
			continue
		}
		if v < tau+x {
			sum += v - tau
			count++
		}
	}
	if count < 10000 {
		t.Fatalf("Monte-Carlo too few hits: %d", count)
	}
	got := sum / float64(count)
	if math.Abs(got-want) > 0.02*x {
		t.Errorf("Monte-Carlo E(Tlost) = %v, closed form %v", got, want)
	}
}

func TestExpTrecExpConsistency(t *testing.T) {
	// The proof of Theorem 1 implicitly uses
	// 1/lambda + E(Trec) = e^(lambda R) (1/lambda + D).
	for _, lambda := range []float64{1.0 / 3600, 1.0 / 86400, 1e-7} {
		const d, r = 60.0, 600.0
		lhs := 1/lambda + ExpTrecExp(lambda, d, r)
		rhs := math.Exp(lambda*r) * (1/lambda + d)
		if math.Abs(lhs-rhs) > 1e-9*rhs {
			t.Errorf("lambda=%v: 1/l+E(Trec) = %v, want %v", lambda, lhs, rhs)
		}
	}
}

func TestExpTrecGenericMatchesExponential(t *testing.T) {
	e := dist.NewExponentialMean(3600)
	w := dist.NewWeibull(1, 3600) // identical law, generic path
	ge := ExpTrec(e, 60, 600)
	gw := ExpTrec(w, 60, 600)
	if math.Abs(ge-gw) > 1e-6*ge {
		t.Errorf("generic E(Trec) %v vs exponential closed form %v", gw, ge)
	}
}

func TestExpTrecExceedsDPlusR(t *testing.T) {
	for _, d := range []dist.Distribution{
		dist.NewExponentialMean(3600),
		dist.WeibullFromMeanShape(3600, 0.7),
	} {
		if got := ExpTrec(d, 60, 600); got < 660 {
			t.Errorf("%s: E(Trec) = %v < D+R", d.Name(), got)
		}
	}
}

func TestOptimalExpAgainstBruteForce(t *testing.T) {
	// Theorem 1's K* must minimize psi over all integers.
	cases := []struct{ w, lambda, c float64 }{
		{20 * 86400, 1.0 / 3600, 600},
		{20 * 86400, 1.0 / 86400, 600},
		{20 * 86400, 1.0 / (7 * 86400), 600},
		{698000, 45208.0 / (125 * 365 * 86400), 600}, // Petascale full platform
		{1000, 1.0 / 100, 10},
	}
	for _, cse := range cases {
		k0, kStar, period, err := OptimalExp(cse.w, cse.lambda, cse.c)
		if err != nil {
			t.Fatal(err)
		}
		if period <= 0 || kStar < 1 {
			t.Fatalf("invalid optimum: K*=%d period=%v", kStar, period)
		}
		if math.Abs(float64(kStar)-k0) > 1 {
			t.Errorf("K*=%d not adjacent to K0=%v", kStar, k0)
		}
		best := math.Inf(1)
		bestK := 0
		for k := 1; k <= 4*kStar+10; k++ {
			if v := PsiExp(float64(k), cse.w, cse.lambda, cse.c); v < best {
				best, bestK = v, k
			}
		}
		if bestK != kStar {
			t.Errorf("w=%v lambda=%v: K*=%d but brute force says %d", cse.w, cse.lambda, kStar, bestK)
		}
	}
}

func TestOptimalExpYoungAsymptotics(t *testing.T) {
	// For lambda*C -> 0 the optimal period approaches Young's
	// sqrt(2*C*MTBF) approximation.
	const mtbf = 125.0 * 365 * 86400 // large MTBF, C=600 => lambda*C ~ 1.5e-7
	lambda := 1 / mtbf
	const c = 600.0
	w := 1e9
	_, _, period, err := OptimalExp(w, lambda, c)
	if err != nil {
		t.Fatal(err)
	}
	young := math.Sqrt(2 * c * mtbf)
	if math.Abs(period-young) > 0.02*young {
		t.Errorf("optimal period %v vs Young %v: should agree within 2%% for tiny lambda*C", period, young)
	}
}

func TestOptimalExpParallelMatchesAggregation(t *testing.T) {
	// Proposition 5 == Theorem 1 on the macro-processor.
	const lambda = 1.0 / (125 * 365 * 86400)
	const p = 45208
	wp := 698000.0
	k0a, ka, pa, err := OptimalExpParallel(wp, p, lambda, 600)
	if err != nil {
		t.Fatal(err)
	}
	k0b, kb, pb, err := OptimalExp(wp, p*lambda, 600)
	if err != nil {
		t.Fatal(err)
	}
	if k0a != k0b || ka != kb || pa != pb {
		t.Errorf("Prop 5 disagrees with aggregated Theorem 1")
	}
}

func TestExpectedMakespanExpSanity(t *testing.T) {
	// E(T*) must exceed the failure-free makespan W + K*C and be finite.
	const w, c, d, r = 20 * 86400.0, 600.0, 60.0, 600.0
	for _, mtbf := range []float64{3600, 86400, 7 * 86400} {
		lambda := 1 / mtbf
		_, kStar, _, err := OptimalExp(w, lambda, c)
		if err != nil {
			t.Fatal(err)
		}
		et, err := ExpectedMakespanExp(w, lambda, c, d, r)
		if err != nil {
			t.Fatal(err)
		}
		failFree := w + float64(kStar)*c
		if et <= failFree {
			t.Errorf("MTBF=%v: E(T*)=%v <= failure-free %v", mtbf, et, failFree)
		}
		if math.IsInf(et, 1) || math.IsNaN(et) {
			t.Errorf("MTBF=%v: E(T*)=%v", mtbf, et)
		}
		// And the optimal K beats single-chunk and 10x-chunks strategies.
		if et > ExpectedMakespanExpK(w, lambda, c, d, r, 1) {
			t.Errorf("MTBF=%v: optimum worse than single chunk", mtbf)
		}
		if et > ExpectedMakespanExpK(w, lambda, c, d, r, 10*kStar) {
			t.Errorf("MTBF=%v: optimum worse than 10x chunks", mtbf)
		}
	}
}

func TestExpectedWorkBeforeFailure(t *testing.T) {
	e := dist.NewExponentialMean(1000)
	const c = 10.0
	// Single chunk: E = w * exp(-(w+c)/1000).
	for _, w := range []float64{50, 500, 2000} {
		got := ExpectedWorkBeforeFailure(e, 0, c, []float64{w})
		want := w * math.Exp(-(w+c)/1000)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("single chunk %v: %v vs %v", w, got, want)
		}
	}
	// Two chunks: E = w1 p1 + w2 p1 p2.
	got := ExpectedWorkBeforeFailure(e, 0, c, []float64{100, 200})
	p1 := math.Exp(-110.0 / 1000)
	p2 := math.Exp(-210.0 / 1000)
	want := 100*p1 + 200*p1*p2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("two chunks: %v vs %v", got, want)
	}
}

func TestExpectedWorkMultiMatchesPowers(t *testing.T) {
	// For iid exponential processors, p processors behave like a single one
	// with rate p*lambda.
	e := dist.NewExponentialMean(1000)
	ep := dist.NewExponentialMean(250) // 4 processors
	chunks := []float64{100, 150, 80}
	taus := []float64{0, 0, 0, 0}
	multi := ExpectedWorkBeforeFailureMulti(e, taus, 10, chunks)
	single := ExpectedWorkBeforeFailure(ep, 0, 10, chunks)
	if math.Abs(multi-single) > 1e-9 {
		t.Errorf("multi %v vs aggregated %v", multi, single)
	}
}

func TestPlatformMTBFFigure1(t *testing.T) {
	// Reproduce the qualitative content of Figure 1: Weibull k=0.7,
	// processor MTBF 125 years, D=60s. Without rejuvenation the platform
	// MTBF beats the all-rejuvenation MTBF for large p, and the gap grows.
	w := dist.WeibullFromMeanShape(125*365*86400, 0.7)
	crossedOver := false
	for _, p := range []int{16, 256, 4096, 65536, 1 << 20} {
		all := PlatformMTBFRejuvenateAll(w, p, 60)
		single := PlatformMTBFSingleRejuvenation(w.Mean(), p, 60)
		if single > all {
			crossedOver = true
		}
		if p >= 4096 && single <= all {
			t.Errorf("p=%d: single-rejuvenation MTBF %v should exceed all-rejuvenation %v", p, single, all)
		}
	}
	if !crossedOver {
		t.Error("no regime where single rejuvenation wins; Figure 1 not reproduced")
	}
	// For the exponential case (k=1) rejuvenating everything is beneficial.
	we := dist.NewWeibull(1, 125*365*86400)
	p := 1024
	all := PlatformMTBFRejuvenateAll(we, p, 60)
	single := PlatformMTBFSingleRejuvenation(we.Mean(), p, 60)
	if all <= single {
		t.Errorf("k=1: all-rejuvenation MTBF %v should exceed %v", all, single)
	}
}

func TestPlatformMTBFFloorAtDowntime(t *testing.T) {
	// With rejuvenation and k<1 the platform MTBF floors at D for huge p.
	w := dist.WeibullFromMeanShape(125*365*86400, 0.7)
	got := PlatformMTBFRejuvenateAll(w, 1<<30, 60)
	if got > 70 {
		t.Errorf("rejuvenate-all MTBF at huge p = %v, want ~D=60", got)
	}
}
