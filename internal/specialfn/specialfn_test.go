package specialfn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0},
		{math.E, 1},
		{2 * math.E * math.E, 2},
		{-1 / math.E, -1},
		{1, 0.5671432904097838},     // omega constant
		{-0.2, -0.2591711018190738}, // negative branch-0 value
		{10, 1.7455280027406994},    // W0(10)
		{100, 3.3856301402900502},   // W0(100)
	}
	for _, c := range cases {
		got, err := LambertW0(c.z)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", c.z, err)
		}
		if math.Abs(got-c.want) > 1e-9*(1+math.Abs(c.want)) {
			t.Errorf("LambertW0(%v) = %v, want %v", c.z, got, c.want)
		}
	}
	// Near the branch point the defining identity is the ground truth.
	for _, z := range []float64{-0.3, -0.36, -0.3678, -0.36787} {
		w, err := LambertW0(z)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", z, err)
		}
		if back := w * math.Exp(w); math.Abs(back-z) > 1e-9 {
			t.Errorf("identity violated at z=%v: W=%v, W e^W=%v", z, w, back)
		}
	}
}

func TestLambertW0Identity(t *testing.T) {
	// Property: W(z) exp(W(z)) == z over the principal branch domain.
	f := func(raw float64) bool {
		// Map raw into (-1/e, 1e6).
		z := -1/math.E + math.Mod(math.Abs(raw), 1e6) + 1e-9
		w, err := LambertW0(z)
		if err != nil {
			return false
		}
		back := w * math.Exp(w)
		return math.Abs(back-z) <= 1e-9*(1+math.Abs(z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLambertW0CheckpointingRange(t *testing.T) {
	// Exercise the exact arguments used by Theorem 1:
	// z = -exp(-lambda*C - 1) for a wide range of lambda*C.
	for _, lc := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 0.1, 1, 10} {
		z := -math.Exp(-lc - 1)
		w, err := LambertW0(z)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", z, err)
		}
		if w <= -1 || w >= 0 {
			t.Errorf("W0(%v) = %v, want in (-1, 0)", z, w)
		}
		if back := w * math.Exp(w); math.Abs(back-z) > 1e-12 {
			t.Errorf("identity violated at lambda*C=%v: %v vs %v", lc, back, z)
		}
	}
}

func TestLambertW0Domain(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Error("LambertW0(-1) should be a domain error")
	}
	if _, err := LambertW0(math.NaN()); err == nil {
		t.Error("LambertW0(NaN) should be a domain error")
	}
}

// poissonCDFUpTo returns e^{-x} * sum_{k=0}^{n} x^k / k!, the exact upper
// incomplete gamma Q(n+1, x) for integer shape.
func poissonCDFUpTo(n int, x float64) float64 {
	term := 1.0
	sum := 1.0
	for k := 1; k <= n; k++ {
		term *= x / float64(k)
		sum += term
	}
	return math.Exp(-x) * sum
}

func TestGammaRegPKnownValues(t *testing.T) {
	cases := []struct{ a, x, want float64 }{
		// P(1, x) = 1 - e^{-x}.
		{1, 1, 1 - math.Exp(-1)},
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 5, 1 - math.Exp(-5)},
		// P(0.5, x) = erf(sqrt(x)).
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		// P(2, x) = 1 - e^{-x}(1+x).
		{2, 3, 1 - math.Exp(-3)*4},
		{2, 0.1, 1 - math.Exp(-0.1)*1.1},
		// Integer a on both sides of the series/CF split:
		// P(n, x) = 1 - e^{-x} sum_{k<n} x^k/k!.
		{10, 5, 1 - poissonCDFUpTo(9, 5)},
		{10, 15, 1 - poissonCDFUpTo(9, 15)},
	}
	for _, c := range cases {
		got, err := GammaRegP(c.a, c.x)
		if err != nil {
			t.Fatalf("GammaRegP(%v,%v): %v", c.a, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("GammaRegP(%v, %v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	f := func(rawA, rawX float64) bool {
		a := math.Mod(math.Abs(rawA), 50) + 0.01
		x := math.Mod(math.Abs(rawX), 100)
		p, err1 := GammaRegP(a, x)
		q, err2 := GammaRegQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-10 && p >= -1e-15 && p <= 1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaRegPMonotone(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.4, 10} {
		prev := -1.0
		for x := 0.0; x <= 30; x += 0.25 {
			p, err := GammaRegP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev-1e-12 {
				t.Fatalf("P(%v, %v) = %v < previous %v: not monotone", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestGammaLowerIncompleteVsQuadrature(t *testing.T) {
	for _, c := range []struct{ a, x float64 }{{1.5, 2}, {2.428, 1.3}, {0.7, 0.4}, {3, 8}} {
		want := AdaptiveSimpson(func(t float64) float64 {
			if t <= 0 {
				return 0
			}
			return math.Pow(t, c.a-1) * math.Exp(-t)
		}, 1e-12, c.x, 1e-12)
		got, err := GammaLowerIncomplete(c.a, c.x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-7*(1+want) {
			t.Errorf("gamma(%v, %v) = %v, quadrature %v", c.a, c.x, got, want)
		}
	}
}

func TestGammaDomain(t *testing.T) {
	if _, err := GammaRegP(-1, 1); err == nil {
		t.Error("GammaRegP(-1,1) should fail")
	}
	if _, err := GammaRegP(1, -1); err == nil {
		t.Error("GammaRegP(1,-1) should fail")
	}
	if _, err := GammaRegQ(0, 1); err == nil {
		t.Error("GammaRegQ(0,1) should fail")
	}
}

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson's rule is exact for cubics.
	f := func(x float64) float64 { return 3*x*x*x - 2*x*x + x - 7 }
	got := Simpson(f, -1, 3, 2)
	want := 3.0/4*(81-1) - 2.0/3*(27+1) + 0.5*(9-1) - 7*4
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("Simpson cubic = %v, want %v", got, want)
	}
}

func TestSimpsonHandlesOddN(t *testing.T) {
	got := Simpson(math.Sin, 0, math.Pi, 7) // rounded up to 8
	if math.Abs(got-2) > 1e-3 {
		t.Errorf("Simpson(sin, 0, pi) = %v, want ~2", got)
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	cases := []struct {
		f       func(float64) float64
		a, b    float64
		want    float64
		tolMult float64
	}{
		{math.Sin, 0, math.Pi, 2, 10},
		{math.Exp, 0, 1, math.E - 1, 10},
		{func(x float64) float64 { return 1 / (1 + x*x) }, 0, 1, math.Pi / 4, 10},
		{func(x float64) float64 { return math.Sqrt(x) }, 0, 1, 2.0 / 3, 1e5}, // endpoint singularity in derivative
	}
	for i, c := range cases {
		got := AdaptiveSimpson(c.f, c.a, c.b, 1e-10)
		if math.Abs(got-c.want) > 1e-10*c.tolMult {
			t.Errorf("case %d: AdaptiveSimpson = %v, want %v", i, got, c.want)
		}
	}
}

func TestBrent(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("Brent sqrt(2) = %v", root)
	}
	root, err = Brent(math.Cos, 1, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Pi/2) > 1e-9 {
		t.Errorf("Brent cos root = %v, want pi/2", root)
	}
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12); err == nil {
		t.Error("Brent without sign change should fail")
	}
}

func TestBrentEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Brent(f, 0, 1, 1e-12); err != nil || r != 0 {
		t.Errorf("Brent endpoint root: %v, %v", r, err)
	}
	if r, err := Brent(f, -1, 0, 1e-12); err != nil || r != 0 {
		t.Errorf("Brent endpoint root: %v, %v", r, err)
	}
}

func BenchmarkLambertW0(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		w, _ := LambertW0(-math.Exp(-1e-4 - 1))
		sink += w
	}
	_ = sink
}

func BenchmarkGammaRegP(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		p, _ := GammaRegP(2.4285, 1.7)
		sink += p
	}
	_ = sink
}
