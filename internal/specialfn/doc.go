// Package specialfn implements the special functions needed by the
// checkpointing theory:
//
//   - the principal branch of the Lambert W function, which Theorem 1 and
//     Proposition 5 of the paper use to express the optimal number of
//     chunks under Exponential failures;
//   - the regularized incomplete gamma functions P and Q, which give the
//     closed-form E(Tlost) for Weibull failures used by the dynamic
//     programs;
//   - adaptive Simpson quadrature, the fallback that evaluates the generic
//     E(Tlost) integral of §2.3 for arbitrary distributions.
//
// Everything is implemented from scratch on top of the math package; the
// algorithms are the classical ones (Halley iteration for Lambert W, the
// series/continued-fraction split for the incomplete gamma).
package specialfn
