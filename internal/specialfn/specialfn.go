package specialfn

import (
	"errors"
	"math"
)

// ErrDomain is returned when a function is evaluated outside its domain.
var ErrDomain = errors.New("specialfn: argument outside domain")

// LambertW0 returns the principal branch W0 of the Lambert W function,
// the solution w >= -1 of w*exp(w) = z, for z >= -1/e.
//
// The checkpointing optimum (Theorem 1) needs W0 at z = -exp(-lambda*C-1),
// which lies in (-1/e, 0); the function is nevertheless implemented for the
// whole principal-branch domain and validated against the defining identity.
func LambertW0(z float64) (float64, error) {
	const minZ = -1.0 / math.E
	if math.IsNaN(z) || z < minZ-1e-12 {
		return math.NaN(), ErrDomain
	}
	if z <= minZ {
		return -1, nil
	}
	if z == 0 {
		return 0, nil
	}

	// Initial guess.
	var w float64
	switch {
	case z < -0.25:
		// Near the branch point use the series in p = sqrt(2(e z + 1)).
		p := math.Sqrt(2 * (math.E*z + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case z < 1:
		// Series around 0: W ~ z - z^2 + 3/2 z^3.
		w = z * (1 - z*(1-1.5*z))
	default:
		// Asymptotic: W ~ ln z - ln ln z.
		l1 := math.Log(z)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}

	// Halley iteration: cubic convergence, a handful of steps suffice.
	for i := 0; i < 60; i++ {
		ew := math.Exp(w)
		f := w*ew - z
		denom := ew*(w+1) - (w+2)*f/(2*(w+1))
		step := f / denom
		w -= step
		if math.Abs(step) <= 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	return w, nil
}

// GammaRegP returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0.
func GammaRegP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaPSeries(a, x), nil
	}
	return 1 - gammaQContinuedFraction(a, x), nil
}

// GammaRegQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x), nil
	}
	return gammaQContinuedFraction(a, x), nil
}

// GammaLowerIncomplete returns the (unnormalized) lower incomplete gamma
// function gamma(a, x) = integral_0^x t^(a-1) e^(-t) dt.
func GammaLowerIncomplete(a, x float64) (float64, error) {
	p, err := GammaRegP(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return p * math.Gamma(a), nil
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	// P(a,x) = x^a e^{-x} / Gamma(a) * sum_{n>=0} x^n / (a(a+1)...(a+n)).
	lg, _ := math.Lgamma(a)
	prefix := math.Exp(a*math.Log(x) - x - lg)
	sum := 1.0 / a
	term := sum
	ai := a
	for n := 0; n < 500; n++ {
		ai++
		term *= x / ai
		sum += term
		if math.Abs(term) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return prefix * sum
}

// gammaQContinuedFraction evaluates Q(a,x) via Lentz's algorithm for the
// continued fraction, accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	prefix := math.Exp(a*math.Log(x) - x - lg)

	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return prefix * h
}

// Simpson integrates f over [a, b] with composite Simpson's rule using n
// subintervals (n is rounded up to the next even number, minimum 2).
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to the requested absolute
// tolerance using recursive adaptive Simpson quadrature with a depth cap.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpsonAux(f, a, b, fa, fb, fm, whole, tol, 30)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}

// Brent finds a root of f in [a, b] (f(a) and f(b) must have opposite
// signs) using Brent's method with the given tolerance.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return math.NaN(), errors.New("specialfn: Brent requires a sign change")
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*1e-16*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
	}
	return b, nil
}
