package cliutil

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/exper"
)

func testParams() exper.Params { return exper.Params{Traces: 1} }

func TestEngineFlagsValidation(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddEngineFlags(fs)
	if err := fs.Parse([]string{"-workers", "-3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Engine(); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v", err)
	}
	f.Workers = 0
	eng, err := f.Engine()
	if err != nil || eng == nil {
		t.Fatalf("valid flags: %v", err)
	}
	if eng.Cache() == nil {
		t.Error("default -cache=true should attach a cache")
	}
	f.Cache = false
	eng, err = f.Engine()
	if err != nil || eng.Cache() != nil {
		t.Errorf("-cache=false should disable the cache: %v", err)
	}
}

func TestRunFlagsValidation(t *testing.T) {
	cases := []struct {
		traces   int
		optional bool
		ok       bool
	}{
		{-1, true, false},
		{-1, false, false},
		{0, true, true},
		{0, false, false},
		{1, false, true},
		{10, true, true},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		f := AddRunFlags(fs, 0, 0, c.optional)
		f.Traces = c.traces
		err := f.Validate()
		if (err == nil) != c.ok {
			t.Errorf("traces=%d optional=%v: err = %v, want ok=%v", c.traces, c.optional, err, c.ok)
		}
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	var sb strings.Builder
	ctx, cancel := SignalContext()
	defer cancel()
	err := RunExperiments(ctx, &sb, "test", []string{"no-such-exp"}, testParams(), false)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

// TestDumpSpecRefusesMultipleIDs (regression): concatenated JSON specs
// can never be loaded back, so dumping requires exactly one experiment.
func TestDumpSpecRefusesMultipleIDs(t *testing.T) {
	var sb strings.Builder
	ctx, cancel := SignalContext()
	defer cancel()
	err := RunExperiments(ctx, &sb, "test", []string{"table2", "table3"}, testParams(), true)
	if err == nil || !strings.Contains(err.Error(), "exactly one experiment") {
		t.Errorf("err = %v", err)
	}
}

// TestServeFlagsValidation: every nonsensical serving parameter fails
// loudly with a message naming the flag.
func TestServeFlagsValidation(t *testing.T) {
	valid := func() *ServeFlags {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		return AddServeFlags(fs)
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	cases := []struct {
		mutate func(*ServeFlags)
		want   string
	}{
		{func(f *ServeFlags) { f.Addr = "" }, "-addr"},
		{func(f *ServeFlags) { f.Concurrent = -1 }, "-concurrent"},
		{func(f *ServeFlags) { f.Queue = -2 }, "-queue"},
		{func(f *ServeFlags) { f.RequestTimeout = -1 }, "-request-timeout"},
		{func(f *ServeFlags) { f.Drain = 0 }, "-drain"},
		{func(f *ServeFlags) { f.LogFormat = "yaml" }, "-log-format"},
	}
	for _, c := range cases {
		f := valid()
		c.mutate(f)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v", c.want, err)
		}
	}
}
