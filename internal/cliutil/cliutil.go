// Package cliutil holds the flag plumbing shared by the cmd tools: the
// engine flags (-workers/-cache), the run flags (-traces/-seed), strict
// validation of both, signal-aware contexts, and the -spec/-dump-spec
// experiment driver. Keeping it in one place guarantees every tool
// validates inputs identically and reports the same errors.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/exper"
	"repro/internal/spec"
)

// EngineFlags carries the shared -workers/-cache flags.
type EngineFlags struct {
	Workers int
	Cache   bool
}

// AddEngineFlags registers -workers and -cache on the flag set.
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	f := &EngineFlags{}
	fs.IntVar(&f.Workers, "workers", 0, "concurrent experiment cells (0 = all CPUs); never changes results")
	fs.BoolVar(&f.Cache, "cache", true, "share DP tables, planners and traces across experiments")
	return f
}

// Engine validates the flags and builds the engine. Negative worker
// counts are rejected here, with a clear message, instead of being passed
// through to silently mean "all CPUs".
func (f *EngineFlags) Engine() (*engine.Engine, error) {
	if f.Workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", f.Workers)
	}
	cfg := engine.Config{Workers: f.Workers}
	if f.Cache {
		cfg.Cache = engine.NewCache(0)
	}
	return engine.New(cfg), nil
}

// RunFlags carries the shared -traces/-seed flags.
type RunFlags struct {
	Traces int
	Seed   uint64
	// tracesOptional records whether 0 means "use the mode default"
	// (experiment tools) or is invalid (chkpt-sim).
	tracesOptional bool
}

// AddRunFlags registers -traces and -seed. defTraces is the default trace
// count; when tracesOptional is true, 0 is allowed and means "mode
// default".
func AddRunFlags(fs *flag.FlagSet, defTraces int, defSeed uint64, tracesOptional bool) *RunFlags {
	f := &RunFlags{tracesOptional: tracesOptional}
	usage := "number of random traces"
	if tracesOptional {
		usage = "override trace count (0 = mode default)"
	}
	fs.IntVar(&f.Traces, "traces", defTraces, usage)
	fs.Uint64Var(&f.Seed, "seed", defSeed, "random seed")
	return f
}

// Validate rejects invalid trace counts with a clear error instead of
// letting a negative or zero value surface later as an opaque harness
// failure.
func (f *RunFlags) Validate() error {
	if f.Traces < 0 {
		return fmt.Errorf("-traces must be >= 0, got %d", f.Traces)
	}
	if !f.tracesOptional && f.Traces == 0 {
		return fmt.Errorf("-traces must be >= 1, got %d", f.Traces)
	}
	return nil
}

// ServeFlags carries the serving flags shared by chkpt-serve (and any
// future networked tool): listen address, admission bounds, timeouts,
// and the durability directory.
type ServeFlags struct {
	Addr           string
	Concurrent     int
	Queue          int
	RequestTimeout time.Duration
	Drain          time.Duration
	// DataDir is the durable store directory; empty keeps everything in
	// memory (sessions and sweep jobs die with the process).
	DataDir string
	// LogFormat selects the access-log encoding: "text" (human-readable,
	// the default) or "json" (one JSON object per line, for shippers).
	LogFormat string
	// DebugAddr, when non-empty, serves net/http/pprof on a second
	// listener so profiling never rides the public API address.
	DebugAddr string
	// StoreURL, when non-empty, mounts a remote store served by
	// chkpt-store instead of a local one — the shared-backend mode that
	// lets several replicas serve one durable state. Mutually exclusive
	// with DataDir.
	StoreURL string
	// ReplicaID names this server in a fleet (it owns the sweep-job
	// claim leases it takes). Empty mints a random id, which is the
	// right default: two replicas must never share one.
	ReplicaID string
}

// AddServeFlags registers the serving flag set.
func AddServeFlags(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.StringVar(&f.Addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&f.Concurrent, "concurrent", 0, "max evaluations executing at once (0 = engine workers)")
	fs.IntVar(&f.Queue, "queue", 16, "admission queue depth beyond the execution slots; overflow answers 429")
	fs.DurationVar(&f.RequestTimeout, "request-timeout", 2*time.Minute, "per-request evaluation timeout (0 = none)")
	fs.DurationVar(&f.Drain, "drain", 15*time.Second, "graceful drain window on SIGINT/SIGTERM")
	fs.StringVar(&f.DataDir, "data-dir", "", "durable store directory for sessions and sweep jobs (empty = in-memory only)")
	fs.StringVar(&f.LogFormat, "log-format", "text", "structured log encoding: text or json")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "listen address for the pprof debug server (empty = disabled)")
	fs.StringVar(&f.StoreURL, "store", "", "base URL of a chkpt-store server to mount as the durable store (exclusive with -data-dir)")
	fs.StringVar(&f.ReplicaID, "replica-id", "", "fleet-unique name for this replica's sweep-job claims (empty = random)")
	return f
}

// Validate rejects nonsensical serving parameters with clear messages.
func (f *ServeFlags) Validate() error {
	switch {
	case f.Addr == "":
		return fmt.Errorf("-addr must not be empty")
	case f.Concurrent < 0:
		return fmt.Errorf("-concurrent must be >= 0 (0 = engine workers), got %d", f.Concurrent)
	case f.Queue < 0:
		return fmt.Errorf("-queue must be >= 0, got %d", f.Queue)
	case f.RequestTimeout < 0:
		return fmt.Errorf("-request-timeout must be >= 0 (0 = none), got %v", f.RequestTimeout)
	case f.Drain <= 0:
		return fmt.Errorf("-drain must be > 0, got %v", f.Drain)
	case f.LogFormat != "text" && f.LogFormat != "json":
		return fmt.Errorf("-log-format must be text or json, got %q", f.LogFormat)
	case f.StoreURL != "" && f.DataDir != "":
		return fmt.Errorf("-store and -data-dir are mutually exclusive: the store server owns the directory")
	}
	return nil
}

// DistSpecFromFlags lowers the cmd tools' -law/-shape flag pair into a
// distribution spec: "exp" aliases "exponential", and the single shape
// flag populates the family-appropriate parameter (Weibull/Gamma shape,
// LogNormal sigma). Families that take neither ignore it, matching the
// flags' documented behavior.
func DistSpecFromFlags(law string, shape float64) spec.DistSpec {
	d := spec.DistSpec{Family: strings.ToLower(law)}
	switch d.Family {
	case "exp":
		d.Family = "exponential"
	case "lognormal":
		d.Sigma = shape
	case "weibull", "gamma":
		d.Shape = shape
	}
	return d
}

// BuildVersion returns the module version the Go toolchain recorded in
// the binary ("(devel)" for tree builds, a tag or pseudo-version for
// `go install`ed ones). It is what chkpt-serve reports via -version, the
// startup log and /healthz.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// SignalContext returns a context cancelled by SIGINT/SIGTERM, so a ^C
// lands as context.Canceled inside the execution stack: in-flight grid
// cells stop promptly and everything already emitted is a valid
// deterministic prefix.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal prints the error prefixed with the tool name and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// RunSpecFile loads an experiment spec file and executes it: the headline
// goes to w, timing to stderr (so stdout stays byte-deterministic).
func RunSpecFile(ctx context.Context, w io.Writer, tool, path string, p exper.Params) error {
	es, err := spec.LoadExperiment(path)
	if err != nil {
		return err
	}
	return runOne(ctx, w, tool, es.Name, es.Title, p, func() error {
		return exper.RunSpec(ctx, w, p, es)
	})
}

// RunExperiments drives the selected registered experiments: with
// dumpSpec it prints each experiment's declarative spec to w; otherwise
// it runs them, headers to w and timings to stderr.
func RunExperiments(ctx context.Context, w io.Writer, tool string, ids []string, p exper.Params, dumpSpec bool) error {
	// A spec file is one JSON document; concatenating several would
	// produce a stream -spec can never load back.
	if dumpSpec && len(ids) != 1 {
		return fmt.Errorf("-dump-spec writes one spec file: select exactly one experiment with -exp (got %d)", len(ids))
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := exper.Find(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(exper.IDs(), ", "))
		}
		if dumpSpec {
			if e.Spec == nil {
				return fmt.Errorf("experiment %q has no declarative spec (spec-expressible: %s)",
					id, strings.Join(specExpressibleIDs(), ", "))
			}
			es, err := e.Spec(p)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if es.Title == "" {
				es.Title = e.Title
			}
			if err := spec.EncodeExperiment(w, es); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			continue
		}
		err := runOne(ctx, w, tool, e.ID, e.Title, p, func() error {
			return e.Run(ctx, w, p)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// runOne prints the experiment header, runs it, and reports the elapsed
// time on stderr.
func runOne(ctx context.Context, w io.Writer, tool, id, title string, p exper.Params, run func() error) error {
	if title != "" {
		fmt.Fprintf(w, "== %s ==\n%s\n\n", id, title)
	} else {
		fmt.Fprintf(w, "== %s ==\n\n", id)
	}
	start := time.Now()
	if err := run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %s in %.1f s\n", tool, id, time.Since(start).Seconds())
	return nil
}

// specExpressibleIDs lists the registered experiments that can be dumped.
func specExpressibleIDs() []string {
	var out []string
	for _, e := range exper.All() {
		if e.Spec != nil {
			out = append(out, e.ID)
		}
	}
	return out
}
