package platform

import (
	"fmt"
	"math"
)

// Time unit helpers (seconds). The paper converts a 1-day platform MTBF to
// a 125-year processor MTBF with 365-day years (ptotal/365), so Year uses
// 365 days.
const (
	Second = 1.0
	Minute = 60.0
	Hour   = 3600.0
	Day    = 86400.0
	Week   = 7 * Day
	Year   = 365 * Day
)

// Overhead selects how the checkpoint and recovery costs scale with the
// number of enrolled processors (§3.1).
type Overhead int

const (
	// OverheadConstant models a resilient-storage ingress bottleneck:
	// C(p) = R(p) = alpha*V, independent of p.
	OverheadConstant Overhead = iota
	// OverheadProportional models per-processor link bottlenecks:
	// C(p) = R(p) = alpha*V/p. Following the paper's experiments, the cost
	// is CBase at p = PTotal and grows as PTotal/p for smaller p
	// (C(p) = 600 * 45208/p in Appendix B).
	OverheadProportional
)

// String implements fmt.Stringer.
func (o Overhead) String() string {
	switch o {
	case OverheadConstant:
		return "constant"
	case OverheadProportional:
		return "proportional"
	}
	return fmt.Sprintf("Overhead(%d)", int(o))
}

// WorkModel selects the parallel execution-time model W(p) of §3.1.
type WorkModel int

const (
	// WorkEmbarrassing: W(p) = W/p.
	WorkEmbarrassing WorkModel = iota
	// WorkAmdahl: W(p) = W/p + gamma*W, gamma the sequential fraction.
	WorkAmdahl
	// WorkKernel: W(p) = W/p + gamma*W^(2/3)/sqrt(p), representative of
	// matrix product and LU/QR factorization on a 2D grid.
	WorkKernel
)

// String implements fmt.Stringer.
func (m WorkModel) String() string {
	switch m {
	case WorkEmbarrassing:
		return "embarrassing"
	case WorkAmdahl:
		return "amdahl"
	case WorkKernel:
		return "kernel"
	}
	return fmt.Sprintf("WorkModel(%d)", int(m))
}

// Work pairs a work model with its gamma parameter.
type Work struct {
	Model WorkModel
	Gamma float64
}

// Time returns W(p), the failure-free execution time of a job of total
// sequential work w on p processors.
func (wk Work) Time(w float64, p int) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("platform: non-positive processor count %d", p))
	}
	fp := float64(p)
	switch wk.Model {
	case WorkEmbarrassing:
		return w / fp
	case WorkAmdahl:
		return w/fp + wk.Gamma*w
	case WorkKernel:
		return w/fp + wk.Gamma*math.Cbrt(w*w)/math.Sqrt(fp)
	}
	panic(fmt.Sprintf("platform: unknown work model %d", wk.Model))
}

// String implements fmt.Stringer.
func (wk Work) String() string {
	if wk.Model == WorkEmbarrassing {
		return wk.Model.String()
	}
	return fmt.Sprintf("%s(gamma=%g)", wk.Model, wk.Gamma)
}

// Spec is a platform configuration (one row of Table 1).
type Spec struct {
	Name string
	// PTotal is the total processor count of the platform.
	PTotal int
	// ProcsPerUnit is the number of processors per failure unit (1 for the
	// synthetic experiments; 4 for the LANL-node-based experiments).
	ProcsPerUnit int
	// D is the downtime after a failure, in seconds.
	D float64
	// CBase and RBase are the checkpoint and recovery costs at p = PTotal,
	// in seconds.
	CBase, RBase float64
	// MTBF is the per-processor (or per-unit) mean time between failures,
	// in seconds.
	MTBF float64
	// W is the total sequential work of the reference job, in seconds.
	W float64
}

// OneProc returns the single-processor configuration of Table 1 with the
// given MTBF (the paper uses 1 hour, 1 day and 1 week).
func OneProc(mtbf float64) Spec {
	return Spec{
		Name:         "1-proc",
		PTotal:       1,
		ProcsPerUnit: 1,
		D:            60,
		CBase:        600,
		RBase:        600,
		MTBF:         mtbf,
		W:            20 * Day,
	}
}

// Petascale returns the Jaguar-like configuration of Table 1 (45,208
// processors, W = 1,000 years, about 8 days on the full platform) with the
// given per-processor MTBF in years (125 or 500 in the paper).
func Petascale(mtbfYears float64) Spec {
	return Spec{
		Name:         "petascale",
		PTotal:       45208,
		ProcsPerUnit: 1,
		D:            60,
		CBase:        600,
		RBase:        600,
		MTBF:         mtbfYears * Year,
		W:            1000 * Year,
	}
}

// Exascale returns the Exascale configuration of Table 1 (2^20 processors,
// W = 10,000 years, about 3.5 days on the full platform, MTBF 1,250 years).
func Exascale() Spec {
	return Spec{
		Name:         "exascale",
		PTotal:       1 << 20,
		ProcsPerUnit: 1,
		D:            60,
		CBase:        600,
		RBase:        600,
		MTBF:         1250 * Year,
		W:            10000 * Year,
	}
}

// LANLNodes returns a Petascale-shaped platform whose failure units are
// 4-processor nodes, as in the paper's log-based experiments (11,302 nodes
// for 45,208 processors). The MTBF field is the per-node mean availability,
// which callers derive from the log.
func LANLNodes(nodeMTBF float64) Spec {
	s := Petascale(125)
	s.Name = "lanl-nodes"
	s.ProcsPerUnit = 4
	s.MTBF = nodeMTBF
	return s
}

// C returns the checkpoint cost C(p) under the given overhead model.
func (s Spec) C(o Overhead, p int) float64 { return s.scaleOverhead(s.CBase, o, p) }

// R returns the recovery cost R(p) under the given overhead model.
func (s Spec) R(o Overhead, p int) float64 { return s.scaleOverhead(s.RBase, o, p) }

func (s Spec) scaleOverhead(base float64, o Overhead, p int) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("platform: non-positive processor count %d", p))
	}
	switch o {
	case OverheadConstant:
		return base
	case OverheadProportional:
		return base * float64(s.PTotal) / float64(p)
	}
	panic(fmt.Sprintf("platform: unknown overhead model %d", o))
}

// Units returns the number of failure units when p processors are enrolled.
// It panics if p is not a multiple of ProcsPerUnit.
func (s Spec) Units(p int) int {
	if s.ProcsPerUnit <= 0 {
		panic("platform: ProcsPerUnit must be positive")
	}
	if p%s.ProcsPerUnit != 0 {
		panic(fmt.Sprintf("platform: %d processors not a multiple of %d per unit", p, s.ProcsPerUnit))
	}
	return p / s.ProcsPerUnit
}

// PlatformMTBF returns the aggregate MTBF seen by a job on p processors
// under the no-rejuvenation model used throughout the paper's experiments:
// unit MTBF divided by the number of units.
func (s Spec) PlatformMTBF(p int) float64 {
	return s.MTBF * float64(s.ProcsPerUnit) / float64(p)
}
