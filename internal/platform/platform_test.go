package platform

import (
	"math"
	"testing"
)

func TestTable1Presets(t *testing.T) {
	one := OneProc(Hour)
	if one.PTotal != 1 || one.D != 60 || one.CBase != 600 || one.W != 20*Day {
		t.Errorf("OneProc preset wrong: %+v", one)
	}
	peta := Petascale(125)
	if peta.PTotal != 45208 {
		t.Errorf("Petascale processors = %d", peta.PTotal)
	}
	if peta.MTBF != 125*Year {
		t.Errorf("Petascale MTBF = %v", peta.MTBF)
	}
	// W chosen so the full platform runs ~8 days failure-free.
	days := peta.W / float64(peta.PTotal) / Day
	if days < 7.5 || days > 8.5 {
		t.Errorf("Petascale full-platform job = %v days, want ~8", days)
	}
	exa := Exascale()
	if exa.PTotal != 1<<20 {
		t.Errorf("Exascale processors = %d", exa.PTotal)
	}
	days = exa.W / float64(exa.PTotal) / Day
	if days < 3 || days > 4 {
		t.Errorf("Exascale full-platform job = %v days, want ~3.5", days)
	}
}

func TestJaguarMTBFDerivation(t *testing.T) {
	// §4.3: a 1-failure-per-day platform of 45,208 processors gives a
	// ~125-year processor MTBF (ptotal/365 years).
	peta := Petascale(125)
	platformMTBF := peta.PlatformMTBF(peta.PTotal)
	if math.Abs(platformMTBF-Day) > 0.015*Day {
		t.Errorf("platform MTBF = %v s, want ~1 day", platformMTBF)
	}
}

func TestOverheadModels(t *testing.T) {
	s := Petascale(125)
	if got := s.C(OverheadConstant, 1024); got != 600 {
		t.Errorf("constant C(1024) = %v", got)
	}
	if got := s.C(OverheadConstant, 45208); got != 600 {
		t.Errorf("constant C(45208) = %v", got)
	}
	// Proportional: C(p) = 600 * 45208 / p (Appendix B).
	if got := s.C(OverheadProportional, 45208); math.Abs(got-600) > 1e-9 {
		t.Errorf("proportional C(ptotal) = %v, want 600", got)
	}
	if got := s.C(OverheadProportional, 22604); math.Abs(got-1200) > 1e-9 {
		t.Errorf("proportional C(ptotal/2) = %v, want 1200", got)
	}
	if got := s.R(OverheadProportional, 11302); math.Abs(got-2400) > 1e-9 {
		t.Errorf("proportional R(ptotal/4) = %v, want 2400", got)
	}
}

func TestWorkModels(t *testing.T) {
	const w = 1e9
	cases := []struct {
		wk   Work
		p    int
		want float64
	}{
		{Work{WorkEmbarrassing, 0}, 1000, w / 1000},
		{Work{WorkAmdahl, 1e-4}, 1000, w/1000 + 1e-4*w},
		{Work{WorkAmdahl, 1e-6}, 45208, w/45208 + 1e-6*w},
		{Work{WorkKernel, 0.1}, 10000, w/10000 + 0.1*math.Cbrt(w*w)/100},
		{Work{WorkKernel, 10}, 45208, w/45208 + 10*math.Cbrt(w*w)/math.Sqrt(45208)},
	}
	for _, c := range cases {
		if got := c.wk.Time(w, c.p); math.Abs(got-c.want) > 1e-6*c.want {
			t.Errorf("%v.Time(%v, %d) = %v, want %v", c.wk, w, c.p, got, c.want)
		}
	}
}

func TestWorkModelsDecreaseWithP(t *testing.T) {
	const w = 1e9
	for _, wk := range []Work{
		{WorkEmbarrassing, 0},
		{WorkAmdahl, 1e-6},
		{WorkKernel, 1},
	} {
		prev := math.Inf(1)
		for p := 1024; p <= 1<<20; p *= 2 {
			cur := wk.Time(w, p)
			if cur >= prev {
				t.Errorf("%v: W(p) not decreasing at p=%d", wk, p)
			}
			prev = cur
		}
	}
}

func TestAmdahlFloor(t *testing.T) {
	// Amdahl work converges to gamma*W as p grows.
	wk := Work{WorkAmdahl, 1e-4}
	const w = 1e9
	limit := wk.Gamma * w
	if got := wk.Time(w, 1<<30); math.Abs(got-limit) > 0.01*limit {
		t.Errorf("Amdahl limit = %v, want ~%v", got, limit)
	}
}

func TestUnitsMapping(t *testing.T) {
	s := LANLNodes(1.466e7)
	if s.ProcsPerUnit != 4 {
		t.Fatalf("LANLNodes procs/unit = %d", s.ProcsPerUnit)
	}
	if got := s.Units(45208); got != 11302 {
		t.Errorf("Units(45208) = %d, want 11302", got)
	}
	if got := s.Units(4096); got != 1024 {
		t.Errorf("Units(4096) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Units with non-multiple should panic")
		}
	}()
	s.Units(45207)
}

func TestPlatformMTBFWithNodes(t *testing.T) {
	s := LANLNodes(1.466e7)
	// 45,208 processors = 11,302 nodes; platform MTBF = nodeMTBF/11302.
	got := s.PlatformMTBF(45208)
	want := 1.466e7 / 11302
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("PlatformMTBF = %v, want %v", got, want)
	}
}

func TestOverheadString(t *testing.T) {
	if OverheadConstant.String() != "constant" || OverheadProportional.String() != "proportional" {
		t.Error("Overhead.String broken")
	}
	if WorkEmbarrassing.String() != "embarrassing" {
		t.Error("WorkModel.String broken")
	}
	if s := (Work{WorkAmdahl, 1e-4}).String(); s != "amdahl(gamma=0.0001)" {
		t.Errorf("Work.String = %q", s)
	}
}

func TestPanics(t *testing.T) {
	s := Petascale(125)
	for i, fn := range []func(){
		func() { s.C(OverheadConstant, 0) },
		func() { s.C(Overhead(99), 10) },
		func() { (Work{WorkEmbarrassing, 0}).Time(1, 0) },
		func() { (Work{WorkModel(99), 0}).Time(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
