// Package platform encodes the paper's platform and application models:
//
//   - the Table 1 parameter presets: the single-processor configuration of
//     §5.1, the Petascale (Jaguar-like, 45,208 processors) and Exascale
//     (2^20 processors) platforms of §5.2, and the LANL-node platform of
//     §6 (OneProc, Petascale, Exascale, LANLNodes);
//   - the two checkpoint/recovery overhead models of §3.1: constant
//     C(p) = C, and proportional C(p) = C * ptotal / p (Overhead);
//   - the three parallel work models W(p) of §3.1/Appendix D:
//     embarrassingly parallel W/p, Amdahl speedup with sequential fraction
//     gamma, and the numerical-kernel model W/p + gamma*(W/p)^(2/3)
//     (Work).
//
// The failure-unit accounting (Units) follows §6: for log-based
// experiments a failure unit is a 4-processor node (ProcsPerUnit), so
// enrolling p processors engages p / ProcsPerUnit units.
//
// The declarative layer (repro/internal/spec) registers the Table 1
// presets in a name-keyed registry ("oneproc", "petascale",
// "petascale-500", "exascale", "lanl-nodes") with MTBF overrides and
// fully custom platforms.
package platform
