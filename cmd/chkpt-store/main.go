// Command chkpt-store serves a durable store (internal/store.FileStore)
// over the cluster wire protocol (internal/cluster), so N chkpt-serve
// replicas can share one session log, result store and lease table.
//
// The protocol is framed compact JSON under POST /store/v1/{op} — the
// same CRC-32C frame discipline the store's own files use — plus the
// operational surface every server in this repo carries: GET /healthz,
// GET /metrics (per-op RPC counters and the store's append/replay/
// lease counters) and GET /v1/debug/traces (spans tagged with the
// calling replica's X-Request-ID, which is what makes one logical
// request traceable across both processes).
//
// Examples:
//
//	chkpt-store -data-dir /var/lib/chkpt              # 127.0.0.1:8484
//	chkpt-store -addr :8484 -data-dir /var/lib/chkpt -log-format json
//	chkpt-serve -store http://127.0.0.1:8484          # a replica mounts it
//
// SIGINT/SIGTERM drains gracefully: in-flight RPCs get the -drain
// window to finish, then the store is closed (every acknowledged
// record is already fsynced, so a kill -9 loses nothing either).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/store"
)

const tool = "chkpt-store"

func main() {
	addr := flag.String("addr", "127.0.0.1:8484", "listen address")
	dataDir := flag.String("data-dir", "", "durable store directory (required)")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	drain := flag.Duration("drain", 15*time.Second, "graceful drain window on SIGINT/SIGTERM")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	version := cliutil.BuildVersion()
	if *showVersion {
		fmt.Printf("%s %s %s\n", tool, version, runtime.Version())
		return
	}
	switch {
	case *addr == "":
		cliutil.Fatal(tool, fmt.Errorf("-addr must not be empty"))
	case *dataDir == "":
		cliutil.Fatal(tool, fmt.Errorf("-data-dir is required: a store server exists to own durable state"))
	case *logFormat != "text" && *logFormat != "json":
		cliutil.Fatal(tool, fmt.Errorf("-log-format must be text or json, got %q", *logFormat))
	case *drain <= 0:
		cliutil.Fatal(tool, fmt.Errorf("-drain must be > 0, got %v", *drain))
	}

	var logger *slog.Logger
	if *logFormat == "json" {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	fst, err := store.Open(*dataDir, store.Options{})
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	defer fst.Close()

	sv := cluster.NewStoreServer(cluster.ServerConfig{
		Backend: fst,
		Logger:  logger,
		Version: version,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           sv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logger.Info("draining", "window", drain.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("drain window elapsed; closing", "err", err)
			_ = httpSrv.Close()
		}
	}()

	logger.Info("listening", "addr", *addr, "version", version, "go", runtime.Version(),
		"dir", *dataDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatal(tool, err)
	}
	<-drained
	logger.Info("stopped")
}
