// Command chkpt-lb is a minimal round-robin HTTP forwarder for a fleet
// of chkpt-serve replicas (internal/cluster.Forwarder). It exists so
// the cluster smoke test — and a laptop-scale deployment — can put N
// replicas behind one address without bringing in an external proxy.
//
// Routing rules: requests rotate across -backends; a backend that is
// unreachable (transport error) is skipped for that request; an HTTP
// error status is a backend's answer and is relayed untouched, never
// retried (a retry could duplicate non-idempotent work). When every
// backend is unreachable the forwarder answers 502.
//
// Example:
//
//	chkpt-lb -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
)

const tool = "chkpt-lb"

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	backends := flag.String("backends", "", "comma-separated replica base URLs (required)")
	drain := flag.Duration("drain", 15*time.Second, "graceful drain window on SIGINT/SIGTERM")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	version := cliutil.BuildVersion()
	if *showVersion {
		fmt.Printf("%s %s %s\n", tool, version, runtime.Version())
		return
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	switch {
	case *addr == "":
		cliutil.Fatal(tool, fmt.Errorf("-addr must not be empty"))
	case len(urls) == 0:
		cliutil.Fatal(tool, fmt.Errorf("-backends is required: a forwarder without backends serves nothing"))
	case *drain <= 0:
		cliutil.Fatal(tool, fmt.Errorf("-drain must be > 0, got %v", *drain))
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fw, err := cluster.NewForwarder(urls, logger)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           fw,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logger.Info("draining", "window", drain.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("drain window elapsed; closing", "err", err)
			_ = httpSrv.Close()
		}
	}()

	logger.Info("listening", "addr", *addr, "version", version, "go", runtime.Version(),
		"backends", strings.Join(urls, ","))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatal(tool, err)
	}
	<-drained
	logger.Info("stopped")
}
