// Command chkpt-vet runs the project's static-analysis suite: the five
// analyzers in internal/analysis that machine-check the determinism,
// context-threading, error-contract, registry-completeness, and
// no-panic invariants the golden tables and the session replay
// equivalence depend on.
//
// Usage:
//
//	chkpt-vet [-json] [-list] [packages ...]
//
// Findings print in the go-vet line format and exit with status 1; with
// -json they print as the standard analysis JSON object
// {"package": {"analyzer": [{"posn": ..., "message": ...}]}} instead.
// Suppress an individual finding with an explained directive on or
// directly above the offending line:
//
//	//chkpt:allow <analyzer> -- <reason>
//
// Stale or unexplained directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as analysis JSON (package -> analyzer -> diagnostics)")
	list := flag.Bool("list", false, "list the analyzers and their contracts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: chkpt-vet [-json] [-list] [packages ...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project invariant checkers (default packages: ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}

	pkgs, _, err := analysis.Load(analysis.LoadConfig{Patterns: flag.Args()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, pkgs, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "chkpt-vet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// jsonDiagnostic matches the per-diagnostic shape `go vet -json` emits.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// writeJSON renders the vet-style two-level JSON object: package import
// path -> analyzer name -> diagnostics.
func writeJSON(w *os.File, pkgs []*analysis.Package, diags []analysis.Diagnostic) error {
	// Attribute each diagnostic to the package whose directory contains
	// its file.
	dirToPath := map[string]string{}
	for _, p := range pkgs {
		dirToPath[p.Dir] = p.Path
	}
	out := map[string]map[string][]jsonDiagnostic{}
	for _, d := range diags {
		pkgPath := dirToPath[dirOf(d.Pos.Filename)]
		if pkgPath == "" {
			pkgPath = dirOf(d.Pos.Filename)
		}
		m := out[pkgPath]
		if m == nil {
			m = map[string][]jsonDiagnostic{}
			out[pkgPath] = m
		}
		m[d.Analyzer] = append(m[d.Analyzer], jsonDiagnostic{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

func dirOf(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[:i]
	}
	return "."
}

func indent(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i, l := range lines {
		lines[i] = "    " + strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n")
}
