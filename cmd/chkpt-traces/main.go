// Command chkpt-traces generates and inspects failure traces and
// availability logs.
//
// Subcommands:
//
//	gen-log   -cluster 19 -n 50000 -o cluster19.log      synthetic LANL-like availability log
//	stats     -in cluster19.log                          summary statistics of a log
//	gen-trace -law weibull -shape 0.7 -mtbf 3.942e9 ...  renewal failure trace (CSV of failure dates)
//
// gen-trace is declarative: its flags compile to a trace spec (print with
// -dump-spec, replay with -spec).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	checkpoint "repro"
	"repro/internal/cliutil"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen-log":
		err = genLog(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "gen-trace":
		err = genTrace(os.Args[2:])
	case "fit":
		err = fit(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chkpt-traces:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: chkpt-traces <gen-log|stats|gen-trace|fit> [flags]
  gen-log   -cluster 18|19 -n N -seed S [-o file]     write a synthetic availability log
  stats     -in file                                  print summary statistics of a log
  gen-trace -law exp|weibull -mtbf SEC [-shape K] -units U -horizon SEC -downtime SEC -seed S [-o file]
            [-workers N] [-spec file.json] [-dump-spec]
  fit       -in file                                  maximum-likelihood Weibull/Exponential fits of a log`)
}

func fit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	in := fs.String("in", "", "input log file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("fit: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	durations, err := trace.ReadLog(f)
	if err != nil {
		return err
	}
	wfit, err := checkpoint.FitWeibull(durations)
	if err != nil {
		return err
	}
	efit, err := checkpoint.FitExponential(durations)
	if err != nil {
		return err
	}
	fmt.Printf("samples            %d\n", len(durations))
	fmt.Printf("Weibull MLE        shape k = %.4f, scale = %.4g s (mean %.4g s)\n",
		wfit.Shape, wfit.Scale, wfit.Mean())
	fmt.Printf("Exponential MLE    mean = %.4g s\n", efit.Mean())
	lw := checkpoint.LogLikelihood(wfit, durations)
	le := checkpoint.LogLikelihood(efit, durations)
	fmt.Printf("log-likelihood     Weibull %.1f vs Exponential %.1f\n", lw, le)
	if wfit.Shape < 1 {
		fmt.Printf("decreasing hazard (k < 1): the platform ages favorably, as the paper's\n")
		fmt.Printf("cited studies report for production clusters (0.33-0.78).\n")
	}
	return nil
}

func genLog(args []string) error {
	fs := flag.NewFlagSet("gen-log", flag.ExitOnError)
	cluster := fs.Int("cluster", 19, "cluster preset: 18 or 19")
	n := fs.Int("n", 50000, "number of availability intervals")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec trace.LogSpec
	switch *cluster {
	case 18:
		spec = checkpoint.Cluster18
	case 19:
		spec = checkpoint.Cluster19
	default:
		return fmt.Errorf("unknown cluster %d", *cluster)
	}
	log := checkpoint.SyntheticLog(spec, *n, *seed)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.WriteLog(w, spec.Name, log)
}

func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input log file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	durations, err := trace.ReadLog(f)
	if err != nil {
		return err
	}
	sort.Float64s(durations)
	var sum, sumSq float64
	for _, d := range durations {
		sum += d
		sumSq += d * d
	}
	n := float64(len(durations))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	q := func(p float64) float64 { return durations[int(p*(n-1))] }
	fmt.Printf("intervals            %d\n", len(durations))
	fmt.Printf("mean availability    %.0f s (%.2f days)\n", mean, mean/checkpoint.Day)
	fmt.Printf("std                  %.0f s\n", std)
	fmt.Printf("min / median / max   %.0f / %.0f / %.0f s\n", durations[0], q(0.5), durations[len(durations)-1])
	fmt.Printf("p10 / p90            %.0f / %.0f s\n", q(0.1), q(0.9))
	emp := checkpoint.NewEmpirical(durations)
	window := mean / 10
	fmt.Printf("P(survive %.0f s | fresh)     %.4f\n", window, emp.CondSurvival(window, 0))
	fmt.Printf("P(survive %.0f s | age=mean)  %.4f\n", window, emp.CondSurvival(window, mean))
	fmt.Printf("platform MTBF at 11302 nodes  %.0f s\n", mean/11302)
	return nil
}

func genTrace(args []string) error {
	fs := flag.NewFlagSet("gen-trace", flag.ExitOnError)
	law := fs.String("law", "weibull", "failure law family: exp | "+strings.Join(spec.DistFamilies(), " | "))
	mtbf := fs.Float64("mtbf", 125*checkpoint.Year, "per-unit MTBF in seconds")
	shape := fs.Float64("shape", 0.7, "weibull/gamma shape, lognormal sigma")
	units := fs.Int("units", 16, "number of units")
	horizon := fs.Float64("horizon", 11*checkpoint.Year, "trace horizon in seconds")
	downtime := fs.Float64("downtime", 60, "downtime after each failure")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	specFile := fs.String("spec", "", "generate from a declarative trace spec file (JSON) instead of the flags")
	dumpSpec := fs.Bool("dump-spec", false, "print the flags' declarative trace spec (JSON) and exit")
	workers := fs.Int("workers", 0, "concurrent generation blocks (0 = all CPUs); never changes the trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", *workers)
	}
	var tspec *spec.TraceSpec
	if *specFile != "" {
		loaded, err := spec.LoadTrace(*specFile)
		if err != nil {
			return err
		}
		tspec = loaded
	} else {
		ds := cliutil.DistSpecFromFlags(*law, *shape)
		ds.Mean = *mtbf
		tspec = &spec.TraceSpec{Dist: ds, Units: *units, Horizon: *horizon, Downtime: *downtime, Seed: *seed}
		if err := tspec.Validate(); err != nil {
			return err
		}
	}
	if *dumpSpec {
		return spec.EncodeTrace(os.Stdout, tspec)
	}
	d, err := tspec.Dist.Build(0)
	if err != nil {
		return err
	}
	eng := checkpoint.NewEngine(checkpoint.EngineConfig{Workers: *workers})
	ts := eng.GenerateTraces(context.Background(), d, tspec.Units, tspec.Horizon, tspec.Downtime, tspec.Seed)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# renewal failure trace: law=%s units=%d horizon=%g downtime=%g seed=%d\n",
		d.Name(), tspec.Units, tspec.Horizon, tspec.Downtime, tspec.Seed)
	fmt.Fprintln(w, "unit,failure_time_s")
	total := 0
	for u, tr := range ts.Units {
		for _, t := range tr.Times {
			fmt.Fprintf(w, "%d,%.3f\n", u, t)
			total++
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d failures for %d units (platform MTBF %.0f s)\n",
		total, tspec.Units, ts.PlatformMTBF(tspec.Units))
	return nil
}
