// Command chkpt-serve runs the HTTP evaluation service: the declarative
// experiment layer (-spec documents) behind a network surface, so
// schedulers can query checkpoint-policy recommendations instead of
// reading batch-generated tables.
//
// Endpoints (see internal/service): POST /v1/evaluate, POST /v1/sweep
// (NDJSON streaming), GET /v1/recommend, the online advisor sessions
// (POST /v1/sessions, GET/DELETE /v1/sessions/{id},
// POST /v1/sessions/{id}/events), durable sweep jobs (POST /v1/sweeps,
// GET /v1/sweeps/{id}), GET /v1/registry, GET /healthz, GET /metrics,
// and the in-process span buffer (GET /v1/debug/traces).
//
// With -data-dir the server mounts a durable store (internal/store):
// advisor sessions are journaled and replayed bit-identically after a
// restart, and sweep jobs resume from their persisted cells instead of
// re-running them.
//
// With -store URL the server mounts a remote store served by
// chkpt-store instead (internal/cluster): N replicas share one durable
// state, racing creations resolve through the append-once log, and
// sweep work is claimed lease-by-lease so no cell ever runs twice.
// -replica-id names this replica's claims; leave it empty to mint a
// fleet-unique one.
//
// Examples:
//
//	chkpt-serve                              # 127.0.0.1:8080
//	chkpt-serve -version                     # build info, then exit
//	chkpt-serve -addr :9090 -workers 8 -concurrent 4 -queue 64
//	chkpt-serve -data-dir /var/lib/chkpt     # survive restarts
//	chkpt-serve -log-format json -debug-addr 127.0.0.1:6060  # shippers + pprof
//	curl -s localhost:8080/v1/recommend?platform=petascale\&p=4096\&family=weibull\&shape=0.7
//	curl -s -X POST --data-binary @spec.json localhost:8080/v1/sweep
//	curl -s -X POST --data-binary @session.json localhost:8080/v1/sessions
//
// SIGINT/SIGTERM drains gracefully: in-flight requests get the -drain
// window to finish; new connections are refused immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/store"
)

const tool = "chkpt-serve"

func main() {
	servef := cliutil.AddServeFlags(flag.CommandLine)
	engf := cliutil.AddEngineFlags(flag.CommandLine)
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	version := cliutil.BuildVersion()
	if *showVersion {
		fmt.Printf("%s %s %s\n", tool, version, runtime.Version())
		return
	}
	if err := servef.Validate(); err != nil {
		cliutil.Fatal(tool, err)
	}
	eng, err := engf.Engine()
	if err != nil {
		cliutil.Fatal(tool, err)
	}

	var logger *slog.Logger
	if servef.LogFormat == "json" {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	cfg := service.Config{
		Engine:         eng,
		MaxConcurrent:  servef.Concurrent,
		RequestTimeout: servef.RequestTimeout,
		Version:        version,
		Logger:         logger,
	}
	// Flag semantics: -queue 0 means "no waiting queue", which the
	// service config spells as negative (its 0 selects the default).
	if servef.Queue == 0 {
		cfg.QueueDepth = -1
	} else {
		cfg.QueueDepth = servef.Queue
	}
	if servef.RequestTimeout == 0 {
		cfg.RequestTimeout = -1
	}
	// -data-dir mounts the durable store: sessions and sweep jobs survive
	// a restart (even a kill -9 — every acknowledged record is fsynced).
	if servef.DataDir != "" {
		fst, err := store.Open(servef.DataDir, store.Options{})
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		defer fst.Close()
		cfg.Store = fst
		logger.Info("durable store", "dir", servef.DataDir)
	}
	// -store mounts a shared remote store served by chkpt-store: this
	// replica becomes one of N serving the same durable state, claiming
	// sweep work through the store's lease face.
	if servef.StoreURL != "" {
		remote, err := cluster.NewRemote(cluster.RemoteConfig{BaseURL: servef.StoreURL})
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		defer remote.Close()
		cfg.Store = remote
		logger.Info("remote store", "url", servef.StoreURL, "replica", servef.ReplicaID)
	}
	cfg.ReplicaID = servef.ReplicaID

	srv := service.New(cfg)
	httpSrv := &http.Server{
		Addr:              servef.Addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// -debug-addr serves net/http/pprof on its own listener: profiling is
	// an operator surface and never rides the public API address. The
	// DefaultServeMux carries the pprof handlers (this package imports
	// net/http/pprof for exactly that side effect) and nothing else — the
	// API mux above is built from scratch.
	if servef.DebugAddr != "" {
		debugSrv := &http.Server{
			Addr:              servef.DebugAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug server listening", "addr", servef.DebugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "err", err)
			}
		}()
		defer debugSrv.Close()
	}

	// The same signal wiring the batch tools use: SIGINT/SIGTERM cancels
	// the context; here that starts the graceful drain.
	ctx, stop := cliutil.SignalContext()
	defer stop()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logger.Info("draining", "window", servef.Drain.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), servef.Drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("drain window elapsed; closing", "err", err)
			_ = httpSrv.Close()
		}
	}()

	logger.Info("listening", "addr", servef.Addr, "version", version, "go", runtime.Version(),
		"workers", eng.Workers(), "cache", eng.Cache() != nil)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatal(tool, err)
	}
	<-drained
	// Stop background sweep runners before the deferred store close, so
	// no runner races a closed store.
	srv.Close()
	logger.Info("stopped")
}
