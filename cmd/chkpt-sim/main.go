// Command chkpt-sim runs a single checkpointing simulation: one platform,
// one failure law, one policy, a configurable number of traces, and prints
// the makespan accounting. It is the fastest way to poke at the library.
//
// Examples:
//
//	chkpt-sim -platform petascale -p 45208 -law weibull -shape 0.7 -policy dpnextfailure
//	chkpt-sim -platform oneproc -mtbf 86400 -law exp -policy young -traces 100
//	chkpt-sim -platform petascale -p 4096 -law exp -policy period -period 3600
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	checkpoint "repro"
)

func main() {
	var (
		platformName = flag.String("platform", "petascale", "platform preset: oneproc | petascale | exascale")
		procs        = flag.Int("p", 0, "processors enrolled (default: whole platform)")
		mtbf         = flag.Float64("mtbf", 0, "per-processor MTBF in seconds (default: preset value)")
		lawName      = flag.String("law", "exp", "failure law: exp | weibull | gamma | lognormal")
		shape        = flag.Float64("shape", 0.7, "shape parameter for weibull/gamma, sigma for lognormal")
		policyName   = flag.String("policy", "optexp", "policy: young | dalylow | dalyhigh | optexp | bouguerra | liu | dpnextfailure | dpmakespan | period | lowerbound")
		period       = flag.Float64("period", 0, "fixed period in seconds (policy=period)")
		traces       = flag.Int("traces", 20, "number of random traces")
		seed         = flag.Uint64("seed", 42, "random seed")
		quanta       = flag.Int("quanta", 120, "dynamic-programming resolution")
		proportional = flag.Bool("proportional", false, "use proportional checkpoint overheads C(p)=C*ptotal/p")
		workers      = flag.Int("workers", 0, "concurrent traces (0 = all CPUs); never changes results")
		cache        = flag.Bool("cache", true, "cache generated traces and DP tables")
	)
	flag.Parse()

	cfg := checkpoint.EngineConfig{Workers: *workers}
	if *cache {
		cfg.Cache = checkpoint.NewCache(0)
	}
	eng := checkpoint.NewEngine(cfg)
	if err := run(eng, *platformName, *procs, *mtbf, *lawName, *shape, *policyName, *period, *traces, *seed, *quanta, *proportional); err != nil {
		fmt.Fprintln(os.Stderr, "chkpt-sim:", err)
		os.Exit(1)
	}
}

func run(eng *checkpoint.Engine, platformName string, procs int, mtbf float64, lawName string, shape float64,
	policyName string, period float64, traces int, seed uint64, quanta int, proportional bool) error {

	var spec checkpoint.PlatformSpec
	switch platformName {
	case "oneproc":
		if mtbf == 0 {
			mtbf = checkpoint.Day
		}
		spec = checkpoint.OneProcPlatform(mtbf)
	case "petascale":
		spec = checkpoint.PetascalePlatform(125)
	case "exascale":
		spec = checkpoint.ExascalePlatform()
	default:
		return fmt.Errorf("unknown platform %q", platformName)
	}
	if mtbf > 0 {
		spec.MTBF = mtbf
	}
	if procs == 0 {
		procs = spec.PTotal
	}

	var law checkpoint.Distribution
	switch lawName {
	case "exp", "exponential":
		law = checkpoint.NewExponentialMean(spec.MTBF)
	case "weibull":
		law = checkpoint.WeibullFromMeanShape(spec.MTBF, shape)
	case "gamma":
		law = checkpoint.GammaFromMeanShape(spec.MTBF, shape)
	case "lognormal":
		law = checkpoint.LogNormalFromMeanSigma(spec.MTBF, shape)
	default:
		return fmt.Errorf("unknown law %q", lawName)
	}

	overhead := checkpoint.OverheadConstant
	if proportional {
		overhead = checkpoint.OverheadProportional
	}
	units := spec.Units(procs)
	work := checkpoint.Work{Model: checkpoint.WorkEmbarrassing}
	job := &checkpoint.Job{
		Work:  work.Time(spec.W, procs),
		C:     spec.C(overhead, procs),
		R:     spec.R(overhead, procs),
		D:     spec.D,
		Units: units,
		Start: checkpoint.Year,
	}
	platformMTBF := (law.Mean() + spec.D) / float64(units)
	horizon := 11*checkpoint.Year + 20*job.Work

	newPolicy, err := buildPolicy(eng, policyName, period, quanta, law, job, platformMTBF, units)
	if err != nil {
		return err
	}

	fmt.Printf("platform %s: p=%d (units=%d), W(p)=%.0f s (%.2f days), C=R=%.0f s, D=%.0f s\n",
		spec.Name, procs, units, job.Work, job.Work/checkpoint.Day, job.C, job.D)
	fmt.Printf("failure law %s, platform MTBF %.0f s\n", law.Name(), platformMTBF)
	fmt.Printf("policy %s, %d traces, seed %d\n\n", policyName, traces, seed)

	// One trace per engine cell; sums are accumulated in trace order after
	// the parallel phase, so the output is identical for every -workers.
	// Each trace's seed is unique to this invocation, so the sets bypass
	// the cache (they could never be requested twice).
	tracesEng := eng.WithoutCache()
	results, err := checkpoint.EngineRun(eng, traces, func(i int) (checkpoint.Result, error) {
		ts := tracesEng.GenerateTraces(law, units, horizon, spec.D, seed+uint64(i)*0x9e3779b97f4a7c15)
		if strings.EqualFold(policyName, "lowerbound") {
			return checkpoint.SimulateLowerBound(job, ts)
		}
		pol, err := newPolicy()
		if err != nil {
			return checkpoint.Result{}, err
		}
		return checkpoint.Simulate(job, pol, ts)
	})
	if err != nil {
		return err
	}
	var mkSum, lostSum, cpSum, waitSum, recSum, failSum float64
	var chunkSum int
	for _, res := range results {
		mkSum += res.Makespan
		lostSum += res.LostTime
		cpSum += res.CheckpointTime
		waitSum += res.WaitTime
		recSum += res.RecoveryTime
		failSum += float64(res.Failures)
		chunkSum += res.Chunks
	}
	n := float64(traces)
	fmt.Printf("average makespan     %12.0f s (%.2f days)\n", mkSum/n, mkSum/n/checkpoint.Day)
	fmt.Printf("  work               %12.0f s\n", job.Work)
	fmt.Printf("  checkpointing      %12.0f s\n", cpSum/n)
	fmt.Printf("  lost to failures   %12.0f s\n", lostSum/n)
	fmt.Printf("  downtime waits     %12.0f s\n", waitSum/n)
	fmt.Printf("  recoveries         %12.0f s\n", recSum/n)
	fmt.Printf("average failures     %12.1f\n", failSum/n)
	fmt.Printf("average chunks       %12.1f\n", float64(chunkSum)/n)
	return nil
}

func buildPolicy(eng *checkpoint.Engine, name string, period float64, quanta int, law checkpoint.Distribution,
	job *checkpoint.Job, platformMTBF float64, units int) (func() (checkpoint.Policy, error), error) {

	switch strings.ToLower(name) {
	case "young":
		p := checkpoint.NewYoung(job.C, platformMTBF)
		return func() (checkpoint.Policy, error) { return p, nil }, nil
	case "dalylow":
		p := checkpoint.NewDalyLow(job.C, platformMTBF, job.D, job.R)
		return func() (checkpoint.Policy, error) { return p, nil }, nil
	case "dalyhigh":
		p := checkpoint.NewDalyHigh(job.C, platformMTBF)
		return func() (checkpoint.Policy, error) { return p, nil }, nil
	case "optexp":
		p, err := checkpoint.NewOptExp(job.Work, float64(units)/law.Mean(), job.C)
		if err != nil {
			return nil, err
		}
		return func() (checkpoint.Policy, error) { return p, nil }, nil
	case "bouguerra":
		p, err := checkpoint.NewBouguerra(job.Work, units, law, job.C, job.D, job.R)
		if err != nil {
			return nil, err
		}
		return func() (checkpoint.Policy, error) { return p, nil }, nil
	case "liu":
		l, err := checkpoint.NewLiu(job.Work, units, law, job.C)
		if err != nil {
			return nil, err
		}
		if !l.Feasible() {
			return nil, fmt.Errorf("liu schedule infeasible for this configuration")
		}
		return func() (checkpoint.Policy, error) { return checkpoint.NewLiu(job.Work, units, law, job.C) }, nil
	case "dpnextfailure", "dpnf":
		// One shared immutable planner: per-run policies reuse its
		// memoized initial planning pass.
		planner := checkpoint.NewDPNextFailurePlanner(law, law.Mean(), checkpoint.WithQuanta(quanta))
		return func() (checkpoint.Policy, error) { return planner.NewPolicy(), nil }, nil
	case "dpmakespan", "dpm":
		macro := law
		if units > 1 {
			var err error
			macro, err = checkpoint.AggregateRenewal(law, units)
			if err != nil {
				return nil, err
			}
		}
		table, err := eng.DPMakespanTable(macro, job.Work, job.C, job.R, job.D, 0, quanta)
		if err != nil {
			return nil, err
		}
		return func() (checkpoint.Policy, error) { return checkpoint.NewDPMakespan(table), nil }, nil
	case "period":
		if period <= 0 {
			return nil, fmt.Errorf("policy=period needs -period")
		}
		p := checkpoint.NewPeriodic("period", period)
		return func() (checkpoint.Policy, error) { return p, nil }, nil
	case "lowerbound":
		return func() (checkpoint.Policy, error) { return nil, nil }, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
