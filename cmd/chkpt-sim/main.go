// Command chkpt-sim runs a single checkpointing simulation: one platform,
// one failure law, one policy, a configurable number of traces, and prints
// the makespan accounting. It is the fastest way to poke at the library.
//
// The flags compile down to a declarative experiment spec: print it with
// -dump-spec, replay it with -spec. Any registered platform preset,
// distribution family and policy kind is accepted (see internal/spec).
//
// Examples:
//
//	chkpt-sim -platform petascale -p 45208 -law weibull -shape 0.7 -policy dpnextfailure
//	chkpt-sim -platform oneproc -mtbf 86400 -law exp -policy young -traces 100
//	chkpt-sim -platform petascale -p 4096 -law exp -policy period -period 3600
//	chkpt-sim -policy dpnextfailure -dump-spec > run.json
//	chkpt-sim -spec run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/spec"
)

const tool = "chkpt-sim"

func main() {
	var (
		platformName = flag.String("platform", "petascale", "platform preset: "+strings.Join(spec.PlatformNames(), " | "))
		procs        = flag.Int("p", 0, "processors enrolled (default: whole platform)")
		mtbf         = flag.Float64("mtbf", 0, "per-processor MTBF in seconds (default: preset value)")
		lawName      = flag.String("law", "exp", "failure law: exp | "+strings.Join(spec.DistFamilies(), " | "))
		shape        = flag.Float64("shape", 0.7, "shape parameter for weibull/gamma, sigma for lognormal")
		policyName   = flag.String("policy", "optexp", "policy: "+strings.Join(spec.PolicyKinds(), " | ")+" (aliases: dpnf, dpm)")
		period       = flag.Float64("period", 0, "fixed period in seconds (policy=period)")
		quanta       = flag.Int("quanta", 120, "dynamic-programming resolution")
		proportional = flag.Bool("proportional", false, "use proportional checkpoint overheads C(p)=C*ptotal/p")
		specFile     = flag.String("spec", "", "run a declarative experiment spec file (JSON) instead of the flags")
		dumpSpec     = flag.Bool("dump-spec", false, "print the flags' declarative spec (JSON) and exit")
		verbose      = flag.Bool("v", false, "report engine cache statistics on stderr after the run")
	)
	runf := cliutil.AddRunFlags(flag.CommandLine, 20, 42, false)
	engf := cliutil.AddEngineFlags(flag.CommandLine)
	flag.Parse()

	if err := runf.Validate(); err != nil {
		cliutil.Fatal(tool, err)
	}
	eng, err := engf.Engine()
	if err != nil {
		cliutil.Fatal(tool, err)
	}

	var es *spec.ExperimentSpec
	if *specFile != "" {
		es, err = spec.LoadExperiment(*specFile)
	} else {
		es, err = compileSpec(*platformName, *procs, *mtbf, *lawName, *shape,
			*policyName, *period, *quanta, *proportional, runf.Traces, runf.Seed)
	}
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	if *dumpSpec {
		if err := spec.EncodeExperiment(os.Stdout, es); err != nil {
			cliutil.Fatal(tool, err)
		}
		return
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	if err := runAccounting(ctx, eng, es); err != nil {
		cliutil.Fatal(tool, err)
	}
	if *verbose {
		// Stderr, so stdout stays byte-identical with and without -v.
		if st, ok := eng.CacheStats(); ok {
			fmt.Fprintf(os.Stderr, "%s: cache hits=%d misses=%d evictions=%d entries=%d bytes=%d budget=%d\n",
				tool, st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes, st.Budget)
		} else {
			fmt.Fprintf(os.Stderr, "%s: cache disabled\n", tool)
		}
	}
}

// compileSpec lowers the flag set into the declarative experiment form.
func compileSpec(platformName string, procs int, mtbf float64, lawName string, shape float64,
	policyName string, period float64, quanta int, proportional bool, traces int, seed uint64) (*spec.ExperimentSpec, error) {

	ref := spec.PlatformRef{Preset: platformName}
	if mtbf > 0 {
		ref.MTBF = mtbf
	}
	plat, err := ref.Build()
	if err != nil {
		return nil, err
	}
	if procs == 0 {
		procs = plat.PTotal
	}

	d := cliutil.DistSpecFromFlags(lawName, shape)

	overhead := ""
	if proportional {
		overhead = platform.OverheadProportional.String()
	}
	kind := strings.ToLower(policyName)
	switch kind {
	case "dpnf":
		kind = "dpnextfailure"
	case "dpm":
		kind = "dpmakespan"
	}
	ps := spec.PolicySpec{Kind: kind}
	switch kind {
	case "period":
		ps.Period = period
	case "dpnextfailure", "dpmakespan":
		ps.Quanta = quanta
	}

	// Trace horizon: the paper's 11-year window plus generous room for a
	// degraded run of the failure-free execution time.
	work := platform.Work{Model: platform.WorkEmbarrassing}
	horizon := 11*platform.Year + 20*work.Time(plat.W, procs)

	return &spec.ExperimentSpec{
		Name: tool,
		Scenario: &spec.ScenarioSpec{
			Name:     fmt.Sprintf("%s-p=%d-%s", plat.Name, procs, kind),
			Platform: ref,
			P:        procs,
			Dist:     d,
			Overhead: overhead,
			Horizon:  horizon,
			Start:    platform.Year,
			Traces:   traces,
			Seed:     seed,
		},
		Candidates: spec.CandidatesSpec{Policies: []spec.PolicySpec{ps}},
	}, nil
}

// runAccounting executes the spec's single cell trace-by-trace on the
// engine pool and prints the averaged makespan breakdown.
func runAccounting(ctx context.Context, eng *engine.Engine, es *spec.ExperimentSpec) error {
	cells, err := es.Expand()
	if err != nil {
		return err
	}
	if len(cells) != 1 {
		return fmt.Errorf("accounting runs need exactly one cell, spec %q has %d", es.Name, len(cells))
	}
	cell := cells[0]
	if cell.Candidates.Standard != nil || len(cell.Candidates.Policies) != 1 {
		return fmt.Errorf("accounting runs need exactly one explicit policy")
	}
	sc, err := cell.Scenario.Compile()
	if err != nil {
		return err
	}
	d, err := sc.Derive()
	if err != nil {
		return err
	}
	job := d.Job(sc.Start)

	ps := cell.Candidates.Policies[0]
	lower := ps.Kind == "lowerbound"
	var newPolicy func() (sim.Policy, error)
	if !lower {
		cand, err := ps.Candidate(ctx, spec.PolicyEnv{Engine: eng, Scenario: sc, Derived: d})
		if err != nil {
			return err
		}
		if cand.SkipReason != "" {
			return fmt.Errorf("policy %s cannot run this scenario: %s", cand.Name, cand.SkipReason)
		}
		newPolicy = cand.New
	}

	fmt.Printf("platform %s: p=%d (units=%d), W(p)=%.0f s (%.2f days), C=R=%.0f s, D=%.0f s\n",
		sc.Spec.Name, sc.P, d.Units, job.Work, job.Work/platform.Day, job.C, job.D)
	fmt.Printf("failure law %s, platform MTBF %.0f s\n", sc.Dist.Name(), d.PlatformMTBF)
	fmt.Printf("policy %s, %d traces, seed %d\n\n", ps.Kind, sc.Traces, sc.Seed)

	// One trace per engine cell; sums are accumulated in trace order after
	// the parallel phase, so the output is identical for every -workers.
	// Each trace's seed is unique to this invocation, so the sets bypass
	// the cache (they could never be requested twice).
	tracesEng := eng.WithoutCache()
	results, err := engine.Run(ctx, eng, sc.Traces, func(i int) (sim.Result, error) {
		ts := tracesEng.GenerateTraces(ctx, sc.Dist, d.Units, sc.Horizon, sc.Spec.D, sc.TraceSeed(i))
		if lower {
			return sim.LowerBound(ctx, job, ts)
		}
		pol, err := newPolicy()
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(ctx, job, pol, ts)
	})
	if err != nil {
		return err
	}
	var mkSum, lostSum, cpSum, waitSum, recSum, failSum float64
	var chunkSum int
	for _, res := range results {
		mkSum += res.Makespan
		lostSum += res.LostTime
		cpSum += res.CheckpointTime
		waitSum += res.WaitTime
		recSum += res.RecoveryTime
		failSum += float64(res.Failures)
		chunkSum += res.Chunks
	}
	n := float64(sc.Traces)
	fmt.Printf("average makespan     %12.0f s (%.2f days)\n", mkSum/n, mkSum/n/platform.Day)
	fmt.Printf("  work               %12.0f s\n", job.Work)
	fmt.Printf("  checkpointing      %12.0f s\n", cpSum/n)
	fmt.Printf("  lost to failures   %12.0f s\n", lostSum/n)
	fmt.Printf("  downtime waits     %12.0f s\n", waitSum/n)
	fmt.Printf("  recoveries         %12.0f s\n", recSum/n)
	fmt.Printf("average failures     %12.1f\n", failSum/n)
	fmt.Printf("average chunks       %12.1f\n", float64(chunkSum)/n)
	return nil
}
