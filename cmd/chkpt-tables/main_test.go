package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/exper"
	"repro/internal/spec"
)

// fixtureParams are the parameters the checked-in testdata fixtures were
// generated with (see `make spec-goldens`):
//
//	chkpt-tables -exp table2 -traces 3 -quanta 30 -seed 11 -periodlb-traces 4 -dump-spec
func fixtureParams() exper.Params {
	return exper.Params{
		Traces:         3,
		Quanta:         30,
		Seed:           11,
		PeriodLBTraces: 4,
		Engine:         engine.New(engine.Config{Cache: engine.NewCache(0)}),
	}
}

// TestSpecFixtureInSync fails when the checked-in table2.json drifts from
// the spec the flags compile to — the reminder to run `make spec-goldens`
// after changing the table2 definition.
func TestSpecFixtureInSync(t *testing.T) {
	e, ok := exper.Find("table2")
	if !ok || e.Spec == nil {
		t.Fatal("table2 is not a spec-expressible experiment")
	}
	es, err := e.Spec(fixtureParams())
	if err != nil {
		t.Fatal(err)
	}
	if es.Title == "" {
		es.Title = e.Title // the -dump-spec fixup
	}
	var buf bytes.Buffer
	if err := spec.EncodeExperiment(&buf, es); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/table2.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("testdata/table2.json is stale; run `make spec-goldens`.\n--- dumped ---\n%s\n--- checked in ---\n%s", buf.Bytes(), want)
	}
}

// TestSpecReproducesFlagOutput is the acceptance criterion: the
// checked-in JSON spec reproduces the paper table byte-identically to the
// flag-driven invocation, and both match the checked-in golden.
func TestSpecReproducesFlagOutput(t *testing.T) {
	ctx := context.Background()

	var flagOut bytes.Buffer
	if err := cliutil.RunExperiments(ctx, &flagOut, "chkpt-tables", []string{"table2"}, fixtureParams(), false); err != nil {
		t.Fatalf("flag-driven run: %v", err)
	}
	var specOut bytes.Buffer
	if err := cliutil.RunSpecFile(ctx, &specOut, "chkpt-tables", "testdata/table2.json", fixtureParams()); err != nil {
		t.Fatalf("spec-driven run: %v", err)
	}
	if !bytes.Equal(flagOut.Bytes(), specOut.Bytes()) {
		t.Errorf("spec-driven output differs from flag-driven output:\n--- flags ---\n%s\n--- spec ---\n%s",
			flagOut.Bytes(), specOut.Bytes())
	}
	golden, err := os.ReadFile("testdata/table2.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(specOut.Bytes(), golden) {
		t.Errorf("output differs from testdata/table2.golden; run `make spec-goldens` if the change is intentional.\n--- got ---\n%s\n--- golden ---\n%s",
			specOut.Bytes(), golden)
	}
}

// TestCancelledSpecRun: a pre-cancelled context fails fast with
// context.Canceled and produces at most a deterministic prefix.
func TestCancelledSpecRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := cliutil.RunSpecFile(ctx, &out, "chkpt-tables", "testdata/table2.json", fixtureParams())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
