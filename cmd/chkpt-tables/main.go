// Command chkpt-tables regenerates the paper's result tables (Tables 2-4
// and the §5.2.2 spare-processor statistics).
//
// Experiments are declarative: flags compile down to an experiment spec
// (print it with -dump-spec), and -spec runs a checked-in spec file with
// byte-identical output to the flag-driven invocation. Tables stream to
// stdout; timings go to stderr, so stdout is deterministic.
//
// Examples:
//
//	chkpt-tables                           # quick mode, all tables
//	chkpt-tables -exp table4               # one table
//	chkpt-tables -full -traces 600         # paper-scale methodology
//	chkpt-tables -exp table2 -dump-spec    # print the declarative spec
//	chkpt-tables -spec testdata/table2.json
package main

import (
	"flag"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/exper"
)

var tableIDs = []string{"table2", "table3", "table4", "spares"}

func main() {
	var (
		ids       = flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(tableIDs, ", ")+") or 'all'")
		full      = flag.Bool("full", false, "paper-scale parameters (600 traces, fine DP quanta); slow")
		quanta    = flag.Int("quanta", 0, "override DP resolution")
		csv       = flag.Bool("csv", false, "also emit CSV")
		plbTraces = flag.Int("periodlb-traces", 0, "override the PeriodLB search trace count (0 = mode default)")
		specFile  = flag.String("spec", "", "run a declarative experiment spec file (JSON) instead of the registered tables")
		dumpSpec  = flag.Bool("dump-spec", false, "print the selected experiments' declarative specs (JSON) and exit")
	)
	runf := cliutil.AddRunFlags(flag.CommandLine, 0, 0, true)
	engf := cliutil.AddEngineFlags(flag.CommandLine)
	flag.Parse()

	const tool = "chkpt-tables"
	if err := runf.Validate(); err != nil {
		cliutil.Fatal(tool, err)
	}
	eng, err := engf.Engine()
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	p := exper.Params{Full: *full, Traces: runf.Traces, Seed: runf.Seed, CSV: *csv, Quanta: *quanta, PeriodLBTraces: *plbTraces, Engine: eng}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	if *specFile != "" {
		if err := cliutil.RunSpecFile(ctx, os.Stdout, tool, *specFile, p); err != nil {
			cliutil.Fatal(tool, err)
		}
		return
	}
	selected := tableIDs
	if *ids != "all" {
		selected = strings.Split(*ids, ",")
	}
	if err := cliutil.RunExperiments(ctx, os.Stdout, tool, selected, p, *dumpSpec); err != nil {
		cliutil.Fatal(tool, err)
	}
}
