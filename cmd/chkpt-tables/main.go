// Command chkpt-tables regenerates the paper's result tables (Tables 2-4
// and the §5.2.2 spare-processor statistics).
//
// Examples:
//
//	chkpt-tables                      # quick mode, all tables
//	chkpt-tables -exp table4          # one table
//	chkpt-tables -full -traces 600    # paper-scale methodology
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/exper"
)

var tableIDs = []string{"table2", "table3", "table4", "spares"}

func main() {
	var (
		ids     = flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(tableIDs, ", ")+") or 'all'")
		full    = flag.Bool("full", false, "paper-scale parameters (600 traces, fine DP quanta); slow")
		traces  = flag.Int("traces", 0, "override trace count")
		seed    = flag.Uint64("seed", 0, "override random seed")
		quanta  = flag.Int("quanta", 0, "override DP resolution")
		csv     = flag.Bool("csv", false, "also emit CSV")
		workers = flag.Int("workers", 0, "concurrent experiment cells (0 = all CPUs); never changes results")
		cache   = flag.Bool("cache", true, "share DP tables, planners and traces across experiments")
	)
	flag.Parse()

	eng := newEngine(*workers, *cache)
	p := exper.Params{Full: *full, Traces: *traces, Seed: *seed, CSV: *csv, Quanta: *quanta, Engine: eng}
	selected := tableIDs
	if *ids != "all" {
		selected = strings.Split(*ids, ",")
	}
	for _, id := range selected {
		id = strings.TrimSpace(id)
		e, ok := exper.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "chkpt-tables: unknown experiment %q (have: %s)\n", id, strings.Join(tableIDs, ", "))
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n%s\n\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "chkpt-tables: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1f s)\n\n", e.ID, time.Since(start).Seconds())
	}
}

// newEngine builds the shared experiment engine: one cache spans all
// selected experiments, so tables that share scenario cells (table4 and
// spares) reuse each other's traces and planning tables.
func newEngine(workers int, cached bool) *engine.Engine {
	cfg := engine.Config{Workers: workers}
	if cached {
		cfg.Cache = engine.NewCache(0)
	}
	return engine.New(cfg)
}
