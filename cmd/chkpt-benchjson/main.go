// Command chkpt-benchjson converts `go test -bench` text output, read
// from stdin, into the machine-readable BENCH_<n>.json tracked per PR
// alongside the prose baseline in BENCH.md:
//
//	go test -run xxx -bench . -benchtime 1x ./... | chkpt-benchjson -pr 6 > BENCH_6.json
//
// The emitted document carries the run environment (goos/goarch/cpu)
// and one record per benchmark with its package, name, iteration
// count, and the ns/op, B/op, and allocs/op measurements — exactly
// what a regression tracker needs to diff two PRs without re-parsing
// free-form text. Records keep the input order, so consecutive runs of
// the same suite diff cleanly.
//
// The compare subcommand diffs two such documents and exits non-zero on
// a regression, turning the committed baseline into a CI gate:
//
//	chkpt-benchjson compare -threshold 5 -allocs-threshold 1.5 -min-ns 1000 BENCH_6.json BENCH_7.json
//
// See compare.go for the regression rules.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Report is the top-level BENCH_<n>.json document.
type Report struct {
	PR         int         `json:"pr"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	pr := flag.Int("pr", 0, "PR number stamped into the report (required)")
	flag.Parse()
	if *pr <= 0 {
		fmt.Fprintln(os.Stderr, "chkpt-benchjson: -pr <n> is required")
		os.Exit(2)
	}

	report, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chkpt-benchjson: %v\n", err)
		os.Exit(1)
	}
	report.PR = *pr

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "chkpt-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench consumes `go test -bench` output. Lines it does not
// recognize (PASS, ok, warnings, test log noise) are skipped; a stream
// with no benchmark lines at all is an error so a silently-empty bench
// run cannot masquerade as a baseline.
func parseBench(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, errors.New("no benchmark result lines found on stdin")
	}
	return report, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1000000   1234 ns/op   56 B/op   7 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem off). Other
// custom metrics are ignored.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.NsPerOp = f
			seen = true
		case "B/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.BytesPerOp = n
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.AllocsPerOp = n
		}
	}
	return b, seen
}
