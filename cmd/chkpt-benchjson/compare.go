package main

// The compare subcommand is the bench-regression gate: it diffs two
// BENCH_<n>.json documents and exits non-zero when the new run regresses
// past the thresholds, so CI can pin a committed baseline.
//
//	chkpt-benchjson compare -threshold 5 -allocs-threshold 1.5 -min-ns 1000 old.json new.json
//
// A benchmark regresses when its ns/op grows by more than the threshold
// factor, when its allocs/op grow by more than the allocs threshold
// factor, or when a zero-alloc benchmark starts allocating at all (the
// zero-alloc pins are exact: any alloc is a contract break, not noise).
// Benchmarks present on only one side are reported but never fail the
// gate — suites are allowed to grow and shrink. Baselines faster than
// -min-ns are skipped for the ns/op check: at sub-microsecond scale the
// timer and scheduler noise on shared CI machines dwarfs any real change.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// compareMain runs the compare subcommand; args excludes "compare".
func compareMain(args []string, stdout, stderr io.Writer) int {
	fs := newCompareFlags(args, stderr)
	if fs == nil {
		return 2
	}
	oldRep, err := loadReport(fs.oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "chkpt-benchjson compare: %v\n", err)
		return 1
	}
	newRep, err := loadReport(fs.newPath)
	if err != nil {
		fmt.Fprintf(stderr, "chkpt-benchjson compare: %v\n", err)
		return 1
	}
	regressions := runCompare(oldRep, newRep, fs.threshold, fs.allocsThreshold, fs.minNs, stdout)
	if regressions > 0 {
		fmt.Fprintf(stderr, "chkpt-benchjson compare: %d regression(s) past threshold %g (allocs %g)\n",
			regressions, fs.threshold, fs.allocsThreshold)
		return 1
	}
	return 0
}

type compareFlags struct {
	threshold       float64
	allocsThreshold float64
	minNs           float64
	oldPath         string
	newPath         string
}

// newCompareFlags parses the subcommand flags by hand (two positional
// paths after optional flags), keeping the main package free of a second
// flag.FlagSet whose usage text would shadow the converter's.
func newCompareFlags(args []string, stderr io.Writer) *compareFlags {
	fs := &compareFlags{threshold: 2, allocsThreshold: 1.5, minNs: 0}
	var paths []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		var dst *float64
		switch arg {
		case "-threshold", "--threshold":
			dst = &fs.threshold
		case "-allocs-threshold", "--allocs-threshold":
			dst = &fs.allocsThreshold
		case "-min-ns", "--min-ns":
			dst = &fs.minNs
		default:
			paths = append(paths, arg)
			continue
		}
		if i+1 >= len(args) {
			fmt.Fprintf(stderr, "chkpt-benchjson compare: %s needs a value\n", arg)
			return nil
		}
		i++
		if parseFloatFlag(args[i], dst, arg, stderr) != nil {
			return nil
		}
	}
	if len(paths) != 2 {
		fmt.Fprintln(stderr, "usage: chkpt-benchjson compare [-threshold f] [-allocs-threshold f] [-min-ns f] old.json new.json")
		return nil
	}
	if fs.threshold < 1 || fs.allocsThreshold < 1 {
		fmt.Fprintln(stderr, "chkpt-benchjson compare: thresholds must be >= 1")
		return nil
	}
	fs.oldPath, fs.newPath = paths[0], paths[1]
	return fs
}

func parseFloatFlag(v string, dst *float64, flag string, stderr io.Writer) error {
	if _, err := fmt.Sscanf(v, "%g", dst); err != nil {
		fmt.Fprintf(stderr, "chkpt-benchjson compare: %s: bad value %q\n", flag, v)
		return err
	}
	return nil
}

// loadReport reads and decodes one BENCH_<n>.json document.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	dec := json.NewDecoder(f)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

// benchKey identifies a benchmark across reports. The -<procs> suffix is
// part of the recorded name; runs on machines with different GOMAXPROCS
// intentionally read as added/removed rather than silently comparing
// different parallelism.
func benchKey(b Benchmark) string { return b.Pkg + "." + b.Name }

// runCompare prints the per-benchmark delta table and returns the number
// of regressions.
func runCompare(oldRep, newRep *Report, threshold, allocsThreshold, minNs float64, w io.Writer) int {
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[benchKey(b)] = b
	}
	regressions := 0
	seen := map[string]bool{}
	for _, nb := range newRep.Benchmarks {
		key := benchKey(nb)
		seen[key] = true
		ob, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "ADDED    %s  %.0f ns/op  %d allocs/op\n", key, nb.NsPerOp, nb.AllocsPerOp)
			continue
		}
		status, reasons := "ok", ""
		if ob.NsPerOp >= minNs && ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*threshold {
			status, reasons = "REGRESS", fmt.Sprintf(" ns/op %.2fx>%g", nb.NsPerOp/ob.NsPerOp, threshold)
		}
		switch {
		case ob.AllocsPerOp == 0 && nb.AllocsPerOp > 0:
			status = "REGRESS"
			reasons += fmt.Sprintf(" allocs 0->%d", nb.AllocsPerOp)
		case ob.AllocsPerOp > 0 && float64(nb.AllocsPerOp) > float64(ob.AllocsPerOp)*allocsThreshold:
			status = "REGRESS"
			reasons += fmt.Sprintf(" allocs %d->%d (> %gx)", ob.AllocsPerOp, nb.AllocsPerOp, allocsThreshold)
		}
		if status == "REGRESS" {
			regressions++
		}
		ratio := 0.0
		if ob.NsPerOp > 0 {
			ratio = nb.NsPerOp / ob.NsPerOp
		}
		fmt.Fprintf(w, "%-8s %s  %.0f -> %.0f ns/op (%.2fx)  %d -> %d allocs/op%s\n",
			status, key, ob.NsPerOp, nb.NsPerOp, ratio, ob.AllocsPerOp, nb.AllocsPerOp, reasons)
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[benchKey(ob)] {
			fmt.Fprintf(w, "REMOVED  %s\n", benchKey(ob))
		}
	}
	return regressions
}
