package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/engine
cpu: AMD EPYC 7763 64-Core Processor
BenchmarkEngineTable2Row-8   	       3	 412345678 ns/op	 1234567 B/op	    8901 allocs/op
BenchmarkCacheHit-8          	 1000000	      1234 ns/op	      56 B/op	       2 allocs/op
PASS
ok  	repro/internal/engine	2.345s
pkg: repro/internal/advisor
BenchmarkPeriodicAdvise-8    	30000000	        37.2 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/advisor	1.200s
?   	repro/cmd/chkpt-sim	[no test files]
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("env = %q/%q, want linux/amd64", rep.Goos, rep.Goarch)
	}
	if !strings.Contains(rep.CPU, "EPYC") {
		t.Errorf("cpu = %q, want the cpu: line", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	b := rep.Benchmarks[0]
	if b.Pkg != "repro/internal/engine" || b.Name != "BenchmarkEngineTable2Row-8" {
		t.Errorf("first record = %q %q", b.Pkg, b.Name)
	}
	if b.Runs != 3 || b.NsPerOp != 412345678 || b.BytesPerOp != 1234567 || b.AllocsPerOp != 8901 {
		t.Errorf("first record measurements = %+v", b)
	}

	adv := rep.Benchmarks[2]
	if adv.Pkg != "repro/internal/advisor" {
		t.Errorf("pkg tracking across sections: got %q", adv.Pkg)
	}
	if adv.NsPerOp != 37.2 || adv.AllocsPerOp != 0 {
		t.Errorf("fractional ns/op record = %+v", adv)
	}
}

func TestParseBenchNoMemColumns(t *testing.T) {
	rep, err := parseBench(strings.NewReader("pkg: p\nBenchmarkX-4   100   250 ns/op\n"))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	b := rep.Benchmarks[0]
	if b.NsPerOp != 250 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("record without -benchmem columns = %+v", b)
	}
}

func TestParseBenchEmptyIsError(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok  \tp\t0.1s\n")); err == nil {
		t.Fatal("stream without benchmark lines should be an error, got nil")
	}
}
