package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cmpReport builds a report with the given (name, ns, allocs) triples in
// one synthetic package.
func cmpReport(benches ...Benchmark) *Report {
	for i := range benches {
		benches[i].Pkg = "example/pkg"
		benches[i].Runs = 100
	}
	return &Report{PR: 1, Benchmarks: benches}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 500000, AllocsPerOp: 18})
	newR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 1500, AllocsPerOp: 0})
	var out strings.Builder
	if n := runCompare(oldR, newR, 2, 1.5, 0, &out); n != 0 {
		t.Fatalf("improvement flagged as %d regression(s):\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	oldR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 10000})
	newR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 25000})
	var out strings.Builder
	if n := runCompare(oldR, newR, 2, 1.5, 0, &out); n != 1 {
		t.Fatalf("2.5x slowdown past a 2x threshold should regress, got %d:\n%s", n, out.String())
	}
	// The same delta under a looser threshold passes.
	if n := runCompare(oldR, newR, 3, 1.5, 0, &out); n != 0 {
		t.Fatalf("2.5x slowdown under a 3x threshold should pass, got %d", n)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	oldR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 10000, AllocsPerOp: 10})
	newR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 10000, AllocsPerOp: 20})
	var out strings.Builder
	if n := runCompare(oldR, newR, 2, 1.5, 0, &out); n != 1 {
		t.Fatalf("2x alloc growth past a 1.5x threshold should regress, got %d:\n%s", n, out.String())
	}
}

func TestCompareZeroAllocPinIsExact(t *testing.T) {
	oldR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 10000, AllocsPerOp: 0})
	newR := cmpReport(Benchmark{Name: "BenchmarkX-8", NsPerOp: 10000, AllocsPerOp: 1})
	var out strings.Builder
	if n := runCompare(oldR, newR, 10, 10, 0, &out); n != 1 {
		t.Fatalf("0->1 allocs must regress regardless of thresholds, got %d:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "allocs 0->1") {
		t.Fatalf("missing zero-alloc reason:\n%s", out.String())
	}
}

func TestCompareMinNsSkipsNoiseDominatedBaselines(t *testing.T) {
	// 100 ns -> 900 ns is a 9x "slowdown" but the baseline is below
	// min-ns: timer noise, not a regression.
	oldR := cmpReport(Benchmark{Name: "BenchmarkTiny-8", NsPerOp: 100})
	newR := cmpReport(Benchmark{Name: "BenchmarkTiny-8", NsPerOp: 900})
	var out strings.Builder
	if n := runCompare(oldR, newR, 2, 1.5, 1000, &out); n != 0 {
		t.Fatalf("sub-min-ns baseline should be exempt from the ns gate, got %d:\n%s", n, out.String())
	}
	// But its alloc contract still holds.
	oldR.Benchmarks[0].AllocsPerOp = 0
	newR.Benchmarks[0].AllocsPerOp = 3
	if n := runCompare(oldR, newR, 2, 1.5, 1000, &out); n != 1 {
		t.Fatalf("alloc gate must apply below min-ns too, got %d", n)
	}
}

func TestCompareAddedRemovedTolerated(t *testing.T) {
	oldR := cmpReport(
		Benchmark{Name: "BenchmarkKept-8", NsPerOp: 10000},
		Benchmark{Name: "BenchmarkGone-8", NsPerOp: 10000},
	)
	newR := cmpReport(
		Benchmark{Name: "BenchmarkKept-8", NsPerOp: 10000},
		Benchmark{Name: "BenchmarkNew-8", NsPerOp: 999999, AllocsPerOp: 50},
	)
	var out strings.Builder
	if n := runCompare(oldR, newR, 2, 1.5, 0, &out); n != 0 {
		t.Fatalf("added/removed benchmarks must not fail the gate, got %d:\n%s", n, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "ADDED    example/pkg.BenchmarkNew-8") ||
		!strings.Contains(s, "REMOVED  example/pkg.BenchmarkGone-8") {
		t.Fatalf("added/removed not reported:\n%s", s)
	}
}

func TestComparePackageDisambiguatesNames(t *testing.T) {
	oldR := &Report{PR: 1, Benchmarks: []Benchmark{
		{Pkg: "a", Name: "BenchmarkX-8", NsPerOp: 100000},
		{Pkg: "b", Name: "BenchmarkX-8", NsPerOp: 100},
	}}
	newR := &Report{PR: 2, Benchmarks: []Benchmark{
		{Pkg: "a", Name: "BenchmarkX-8", NsPerOp: 100000},
		{Pkg: "b", Name: "BenchmarkX-8", NsPerOp: 120},
	}}
	var out strings.Builder
	if n := runCompare(oldR, newR, 2, 1.5, 0, &out); n != 0 {
		t.Fatalf("same-name benchmarks in different packages crossed wires: %d\n%s", n, out.String())
	}
}

// TestCompareMainEndToEnd drives the subcommand entry point: flags,
// file IO, exit codes, and the malformed-input error path.
func TestCompareMainEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", `{"pr":6,"benchmarks":[{"pkg":"p","name":"BenchmarkA-8","runs":1,"nsPerOp":556246,"allocsPerOp":15}]}`)
	goodP := write("new.json", `{"pr":7,"benchmarks":[{"pkg":"p","name":"BenchmarkA-8","runs":100,"nsPerOp":1500}]}`)
	badP := write("bad.json", `{"pr":7,"benchmarks":[{"pkg":"p","name":"BenchmarkA-8","runs":100,"nsPerOp":9999999,"allocsPerOp":200}]}`)
	malformed := write("malformed.json", `{"pr": 7, "benchmarks": [`)
	empty := write("empty.json", `{"pr": 7, "benchmarks": []}`)

	var out, errOut strings.Builder
	if code := compareMain([]string{"-threshold", "5", oldP, goodP}, &out, &errOut); code != 0 {
		t.Fatalf("improvement exit = %d, stderr: %s", code, errOut.String())
	}
	if code := compareMain([]string{"-threshold", "5", "-allocs-threshold", "1.5", oldP, badP}, &out, &errOut); code != 1 {
		t.Fatalf("regression exit = %d, want 1", code)
	}
	if code := compareMain([]string{oldP, malformed}, &out, &errOut); code != 1 {
		t.Fatalf("malformed JSON exit = %d, want 1", code)
	}
	if code := compareMain([]string{oldP, empty}, &out, &errOut); code != 1 {
		t.Fatalf("empty report exit = %d, want 1", code)
	}
	if code := compareMain([]string{oldP}, &out, &errOut); code != 2 {
		t.Fatalf("missing operand exit = %d, want 2", code)
	}
	if code := compareMain([]string{"-threshold", "0.5", oldP, goodP}, &out, &errOut); code != 2 {
		t.Fatalf("sub-1 threshold exit = %d, want 2", code)
	}
}
