// Command chkpt-figures regenerates the data series behind the paper's
// figures (Figure 1 through the appendix sweeps) as aligned text tables
// and optional CSV.
//
// Figures with a declarative form (fig5) can be dumped with -dump-spec
// and replayed byte-identically with -spec; any experiment spec file runs
// through -spec. Timings go to stderr, so stdout is deterministic.
//
// Examples:
//
//	chkpt-figures -list
//	chkpt-figures -exp fig4
//	chkpt-figures -exp fig2,fig4,fig7 -csv
//	chkpt-figures -exp fig5 -dump-spec > fig5.json
//	chkpt-figures -spec fig5.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/exper"
)

func figureIDs() []string {
	var out []string
	for _, e := range exper.All() {
		if strings.HasPrefix(e.ID, "fig") {
			out = append(out, e.ID)
		}
	}
	return out
}

func main() {
	var (
		ids       = flag.String("exp", "all", "comma-separated figure ids or 'all'")
		list      = flag.Bool("list", false, "list available figures and exit")
		full      = flag.Bool("full", false, "paper-scale parameters; slow")
		quanta    = flag.Int("quanta", 0, "override DP resolution")
		csv       = flag.Bool("csv", false, "also emit CSV")
		plbTraces = flag.Int("periodlb-traces", 0, "override the PeriodLB search trace count (0 = mode default)")
		specFile  = flag.String("spec", "", "run a declarative experiment spec file (JSON) instead of the registered figures")
		dumpSpec  = flag.Bool("dump-spec", false, "print the selected figures' declarative specs (JSON) and exit")
	)
	runf := cliutil.AddRunFlags(flag.CommandLine, 0, 0, true)
	engf := cliutil.AddEngineFlags(flag.CommandLine)
	flag.Parse()

	const tool = "chkpt-figures"
	if *list {
		for _, e := range exper.All() {
			if strings.HasPrefix(e.ID, "fig") {
				fmt.Printf("%-22s %s\n", e.ID, e.Title)
			}
		}
		return
	}
	if err := runf.Validate(); err != nil {
		cliutil.Fatal(tool, err)
	}
	eng, err := engf.Engine()
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	p := exper.Params{Full: *full, Traces: runf.Traces, Seed: runf.Seed, CSV: *csv, Quanta: *quanta, PeriodLBTraces: *plbTraces, Engine: eng}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	if *specFile != "" {
		if err := cliutil.RunSpecFile(ctx, os.Stdout, tool, *specFile, p); err != nil {
			cliutil.Fatal(tool, err)
		}
		return
	}
	selected := figureIDs()
	if *ids != "all" {
		selected = strings.Split(*ids, ",")
	}
	if err := cliutil.RunExperiments(ctx, os.Stdout, tool, selected, p, *dumpSpec); err != nil {
		cliutil.Fatal(tool, err)
	}
}
