// Command chkpt-figures regenerates the data series behind the paper's
// figures (Figure 1 through the appendix sweeps) as aligned text tables
// and optional CSV.
//
// Examples:
//
//	chkpt-figures -list
//	chkpt-figures -exp fig4
//	chkpt-figures -exp fig2,fig4,fig7 -csv
//	chkpt-figures -exp fig5 -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/exper"
)

func figureIDs() []string {
	var out []string
	for _, e := range exper.All() {
		if strings.HasPrefix(e.ID, "fig") {
			out = append(out, e.ID)
		}
	}
	return out
}

func main() {
	var (
		ids     = flag.String("exp", "all", "comma-separated figure ids or 'all'")
		list    = flag.Bool("list", false, "list available figures and exit")
		full    = flag.Bool("full", false, "paper-scale parameters; slow")
		traces  = flag.Int("traces", 0, "override trace count")
		seed    = flag.Uint64("seed", 0, "override random seed")
		quanta  = flag.Int("quanta", 0, "override DP resolution")
		csv     = flag.Bool("csv", false, "also emit CSV")
		workers = flag.Int("workers", 0, "concurrent experiment cells (0 = all CPUs); never changes results")
		cache   = flag.Bool("cache", true, "share DP tables, planners and traces across figures")
	)
	flag.Parse()

	if *list {
		for _, e := range exper.All() {
			if strings.HasPrefix(e.ID, "fig") {
				fmt.Printf("%-22s %s\n", e.ID, e.Title)
			}
		}
		return
	}

	cfg := engine.Config{Workers: *workers}
	if *cache {
		cfg.Cache = engine.NewCache(0)
	}
	p := exper.Params{Full: *full, Traces: *traces, Seed: *seed, CSV: *csv, Quanta: *quanta,
		Engine: engine.New(cfg)}
	selected := figureIDs()
	if *ids != "all" {
		selected = strings.Split(*ids, ",")
	}
	for _, id := range selected {
		id = strings.TrimSpace(id)
		e, ok := exper.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "chkpt-figures: unknown figure %q (try -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n%s\n\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "chkpt-figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1f s)\n\n", e.ID, time.Since(start).Seconds())
	}
}
