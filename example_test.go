package checkpoint_test

import (
	"context"
	"fmt"

	checkpoint "repro"
)

// ExampleOptimalExp computes the Theorem 1 optimum for a 20-day job on a
// processor with a 1-day MTBF and 600 s checkpoints.
func ExampleOptimalExp() {
	_, kStar, period, err := checkpoint.OptimalExp(20*checkpoint.Day, 1/checkpoint.Day, 600)
	if err != nil {
		panic(err)
	}
	fmt.Printf("split the job into %d chunks of %.0f s\n", kStar, period)
	// Output: split the job into 177 chunks of 9763 s
}

// ExampleSimulate runs one job under Young's policy on a reproducible
// failure trace.
func ExampleSimulate() {
	law := checkpoint.NewExponentialMean(4 * checkpoint.Hour)
	traces := checkpoint.GenerateTraces(law, 1, 1e8, 60, 7)
	job := &checkpoint.Job{
		Work:  checkpoint.Day,
		C:     600,
		R:     600,
		D:     60,
		Units: 1,
	}
	pol := checkpoint.NewYoung(job.C, law.Mean())
	res, err := checkpoint.Simulate(context.Background(), job, pol, traces)
	if err != nil {
		panic(err)
	}
	fmt.Printf("failures: %d, checkpoints: %d, work done: %.0f s\n",
		res.Failures, res.Checkpoints, res.WorkTime)
	// Output: failures: 7, checkpoints: 21, work done: 86400 s
}

// ExampleNewSession drives an online advisor session by hand: the
// event-driven form of ExampleSimulate, where the caller (a scheduler)
// supplies the failures instead of a generated trace. Decisions and
// their rationale come back step by step.
func ExampleNewSession() {
	job := &checkpoint.Job{Work: 20000, C: 200, R: 200, D: 30, Units: 4}
	sess, err := checkpoint.NewSession(checkpoint.SessionConfig{
		Job:    job,
		Policy: checkpoint.NewPeriodic("Periodic", 6000),
	})
	if err != nil {
		panic(err)
	}

	d, _ := sess.Advise()
	fmt.Printf("run %.0f s, then checkpoint for %.0f s (policy %s, period %.0f)\n",
		d.Chunk, d.CheckpointCost, d.Policy, d.Period)

	// The chunk commits at t = chunk + C.
	_ = sess.Observe(checkpoint.Event{Kind: checkpoint.EventCheckpointed, Time: 6200, Work: d.Chunk})

	// Unit 2 fails mid-chunk; after downtime + recovery the session
	// re-advises from the restored checkpoint.
	_ = sess.Observe(checkpoint.Event{Kind: checkpoint.EventFailure, Time: 9000, Unit: 2})
	_ = sess.Observe(checkpoint.Event{Kind: checkpoint.EventRecovered, Time: 9230})
	d, _ = sess.Advise()
	fmt.Printf("after %d failure(s): run %.0f s (remaining %.0f s)\n",
		sess.Failures(), d.Chunk, d.Remaining)

	// Out-of-order events are strictly rejected with typed errors.
	err = sess.Observe(checkpoint.Event{Kind: checkpoint.EventProgress, Time: 1000})
	fmt.Println("backwards clock accepted:", err == nil)
	// Output:
	// run 6000 s, then checkpoint for 200 s (policy Periodic, period 6000)
	// after 1 failure(s): run 6000 s (remaining 14000 s)
	// backwards clock accepted: false
}

// ExampleNewEngine evaluates the paper's policy set on a small scenario
// through the parallel experiment engine, twice with different worker
// counts against one shared cache: the worker count never changes the
// result, and the second evaluation reuses the first one's traces and
// planning tables instead of recomputing them.
func ExampleNewEngine() {
	law := checkpoint.NewExponentialMean(checkpoint.Day)
	sc := checkpoint.Scenario{
		Name:     "engine-demo",
		Spec:     checkpoint.OneProcPlatform(checkpoint.Day),
		P:        1,
		Dist:     law,
		Overhead: checkpoint.OverheadConstant,
		Work:     checkpoint.Work{Model: checkpoint.WorkEmbarrassing},
		Horizon:  2 * checkpoint.Year,
		Traces:   4,
		Seed:     1,
	}
	cfg := checkpoint.DefaultCandidateConfig()
	cfg.DPNextFailureQuanta = 40 // keep the example fast

	cache := checkpoint.NewCache(0)
	sequential := checkpoint.NewEngine(checkpoint.EngineConfig{Workers: 1, Cache: cache})
	parallel := checkpoint.NewEngine(checkpoint.EngineConfig{Workers: 4, Cache: cache})

	cands, err := checkpoint.StandardCandidatesWith(context.Background(), sequential, sc, cfg)
	if err != nil {
		panic(err)
	}
	ev1, err := checkpoint.EvaluateWith(context.Background(), sequential, sc, cands)
	if err != nil {
		panic(err)
	}
	ev2, err := checkpoint.EvaluateWith(context.Background(), parallel, sc, cands)
	if err != nil {
		panic(err)
	}
	st := cache.Stats()
	fmt.Printf("identical across worker counts: %v\n", ev1.Degradation["Young"] == ev2.Degradation["Young"])
	fmt.Printf("cache reused shared artifacts: %v\n", st.Hits > 0)
	// Output:
	// identical across worker counts: true
	// cache reused shared artifacts: true
}

// ExamplePlatformMTBFSingleRejuvenation reproduces the §3.1 observation
// behind Figure 1: at scale, rejuvenating every processor after each
// failure destroys the platform MTBF when failures have decreasing hazard.
func ExamplePlatformMTBFSingleRejuvenation() {
	w := checkpoint.WeibullFromMeanShape(125*checkpoint.Year, 0.7)
	all := checkpoint.PlatformMTBFRejuvenateAll(w, 1<<20, 60)
	single := checkpoint.PlatformMTBFSingleRejuvenation(w.Mean(), 1<<20, 60)
	fmt.Printf("rejuvenate-all: %.0f s, single-rejuvenation: %.0f s\n", all, single)
	// Output: rejuvenate-all: 70 s, single-rejuvenation: 3759 s
}

// ExampleRunSpec declares a two-cell experiment as data, runs it with a
// cancellable context, and streams the results in deterministic order —
// the declarative workflow behind the cmd tools' -spec flag.
func ExampleRunSpec() {
	es := &checkpoint.ExperimentSpec{
		Name: "example",
		Scenario: &checkpoint.ScenarioSpec{
			Name:     "oneproc",
			Platform: checkpoint.PlatformRef{Preset: "oneproc"},
			P:        1,
			Dist:     checkpoint.DistSpec{Family: "exponential"}, // mean = platform MTBF
			Horizon:  2 * checkpoint.Year,
			Traces:   3,
			Seed:     7,
		},
		Grid: &checkpoint.GridSpec{MTBF: []float64{checkpoint.Hour, checkpoint.Day}},
		Candidates: checkpoint.CandidatesSpec{Policies: []checkpoint.PolicySpec{
			{Kind: "young"},
		}},
	}
	eng := checkpoint.NewEngine(checkpoint.EngineConfig{Cache: checkpoint.NewCache(0)})
	for cell, err := range checkpoint.RunSpec(context.Background(), eng, es) {
		if err != nil {
			panic(err)
		}
		for _, row := range cell.Eval.Rows() {
			if !row.LowerBound {
				fmt.Printf("%s %s degradation %.3f\n", cell.Scenario.Name, row.Name, row.Degradation.Mean)
			}
		}
	}
	// Output:
	// oneproc[mtbf=3600] Young degradation 1.000
	// oneproc[mtbf=86400] Young degradation 1.000
}
