package checkpoint_test

import (
	"fmt"

	checkpoint "repro"
)

// ExampleOptimalExp computes the Theorem 1 optimum for a 20-day job on a
// processor with a 1-day MTBF and 600 s checkpoints.
func ExampleOptimalExp() {
	_, kStar, period, err := checkpoint.OptimalExp(20*checkpoint.Day, 1/checkpoint.Day, 600)
	if err != nil {
		panic(err)
	}
	fmt.Printf("split the job into %d chunks of %.0f s\n", kStar, period)
	// Output: split the job into 177 chunks of 9763 s
}

// ExampleSimulate runs one job under Young's policy on a reproducible
// failure trace.
func ExampleSimulate() {
	law := checkpoint.NewExponentialMean(4 * checkpoint.Hour)
	traces := checkpoint.GenerateTraces(law, 1, 1e8, 60, 7)
	job := &checkpoint.Job{
		Work:  checkpoint.Day,
		C:     600,
		R:     600,
		D:     60,
		Units: 1,
	}
	pol := checkpoint.NewYoung(job.C, law.Mean())
	res, err := checkpoint.Simulate(job, pol, traces)
	if err != nil {
		panic(err)
	}
	fmt.Printf("failures: %d, checkpoints: %d, work done: %.0f s\n",
		res.Failures, res.Checkpoints, res.WorkTime)
	// Output: failures: 7, checkpoints: 21, work done: 86400 s
}

// ExamplePlatformMTBFSingleRejuvenation reproduces the §3.1 observation
// behind Figure 1: at scale, rejuvenating every processor after each
// failure destroys the platform MTBF when failures have decreasing hazard.
func ExamplePlatformMTBFSingleRejuvenation() {
	w := checkpoint.WeibullFromMeanShape(125*checkpoint.Year, 0.7)
	all := checkpoint.PlatformMTBFRejuvenateAll(w, 1<<20, 60)
	single := checkpoint.PlatformMTBFSingleRejuvenation(w.Mean(), 1<<20, 60)
	fmt.Printf("rejuvenate-all: %.0f s, single-rejuvenation: %.0f s\n", all, single)
	// Output: rejuvenate-all: 70 s, single-rejuvenation: 3759 s
}
