package checkpoint_test

import (
	"context"
	"math"
	"testing"

	checkpoint "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// Build a failure law, generate traces, run three policies, compare.
	law := checkpoint.WeibullFromMeanShape(20000, 0.7)
	traces := checkpoint.GenerateTraces(law, 8, 1e8, 60, 42)
	job := &checkpoint.Job{Work: 40000, C: 300, R: 300, D: 60, Units: 8, Start: 1000}

	young := checkpoint.NewYoung(job.C, law.Mean()/8)
	resYoung, err := checkpoint.Simulate(context.Background(), job, young, traces)
	if err != nil {
		t.Fatal(err)
	}
	dpnf := checkpoint.NewDPNextFailure(law, law.Mean(), checkpoint.WithQuanta(60))
	resDPNF, err := checkpoint.Simulate(context.Background(), job, dpnf, traces)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := checkpoint.SimulateLowerBound(context.Background(), job, traces)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]checkpoint.Result{"young": resYoung, "dpnf": resDPNF} {
		if res.WorkTime < job.Work-1e-6 {
			t.Errorf("%s: incomplete work %v", name, res.WorkTime)
		}
		if lb.Makespan > res.Makespan+1e-6 {
			t.Errorf("%s: lower bound %v above policy %v", name, lb.Makespan, res.Makespan)
		}
		if e := res.AccountingError(); math.Abs(e) > 1e-6 {
			t.Errorf("%s: accounting error %v", name, e)
		}
	}
}

func TestPublicTheory(t *testing.T) {
	k0, kStar, period, err := checkpoint.OptimalExp(20*checkpoint.Day, 1/checkpoint.Day, 600)
	if err != nil {
		t.Fatal(err)
	}
	if kStar < 1 || period <= 0 || math.Abs(float64(kStar)-k0) > 1 {
		t.Errorf("OptimalExp: k0=%v k*=%d period=%v", k0, kStar, period)
	}
	et, err := checkpoint.ExpectedMakespanExp(20*checkpoint.Day, 1/checkpoint.Day, 600, 60, 600)
	if err != nil {
		t.Fatal(err)
	}
	if et <= 20*checkpoint.Day {
		t.Errorf("E(T*) = %v below failure-free time", et)
	}
	law := checkpoint.WeibullFromMeanShape(10000, 0.7)
	if v := checkpoint.ExpTlost(law, 500, 100); v < 0 || v > 500 {
		t.Errorf("ExpTlost = %v", v)
	}
	if v := checkpoint.ExpTrec(law, 60, 600); v < 660 {
		t.Errorf("ExpTrec = %v", v)
	}
}

func TestPublicRejuvenationAnalysis(t *testing.T) {
	w := checkpoint.WeibullFromMeanShape(125*checkpoint.Year, 0.7)
	all := checkpoint.PlatformMTBFRejuvenateAll(w, 45208, 60)
	single := checkpoint.PlatformMTBFSingleRejuvenation(w.Mean(), 45208, 60)
	if single <= all {
		t.Errorf("single rejuvenation MTBF %v should beat all-rejuvenation %v at scale", single, all)
	}
}

func TestPublicEvaluate(t *testing.T) {
	spec := checkpoint.OneProcPlatform(8000)
	spec.W = 30000
	spec.CBase, spec.RBase = 300, 300
	sc := checkpoint.Scenario{
		Name: "public", Spec: spec, P: 1,
		Dist:     checkpoint.NewExponentialMean(8000),
		Overhead: checkpoint.OverheadConstant,
		Work:     checkpoint.Work{Model: checkpoint.WorkEmbarrassing},
		Horizon:  1e8, Traces: 8, Seed: 3,
	}
	cfg := checkpoint.DefaultCandidateConfig()
	cfg.DPNextFailureQuanta = 40
	cands, err := checkpoint.StandardCandidates(context.Background(), sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := checkpoint.Evaluate(context.Background(), sc, cands)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Degradation["LowerBound"].Mean > 1 {
		t.Error("lower bound degradation above 1")
	}
	if len(ev.Order) < 5 {
		t.Errorf("too few policies evaluated: %v", ev.Order)
	}
}

func TestPublicDPMakespan(t *testing.T) {
	law := checkpoint.NewExponentialMean(9000)
	table, err := checkpoint.BuildDPMakespanTable(law, 30000, 300, 300, 60, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	traces := checkpoint.GenerateTraces(law, 1, 1e8, 60, 9)
	job := &checkpoint.Job{Work: 30000, C: 300, R: 300, D: 60, Units: 1}
	res, err := checkpoint.Simulate(context.Background(), job, checkpoint.NewDPMakespan(table), traces)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkTime < 30000-1e-6 {
		t.Errorf("incomplete: %+v", res)
	}
}

func TestPublicLogPipeline(t *testing.T) {
	log := checkpoint.SyntheticLog(checkpoint.Cluster19, 5000, 1)
	emp := checkpoint.NewEmpirical(log)
	if emp.Mean() <= 0 {
		t.Fatal("empty empirical law")
	}
	spec := checkpoint.LANLNodesPlatform(emp.Mean())
	if spec.ProcsPerUnit != 4 {
		t.Errorf("LANL platform procs/unit = %d", spec.ProcsPerUnit)
	}
}
